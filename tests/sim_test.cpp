// Tests for the discrete-event simulator: scheduler ordering, clock
// semantics, link service behaviour, utilization metering (the ground
// truth behind the paper's Eqs. 1-3), and path routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/util_meter.hpp"
#include "stats/rng.hpp"

namespace {

using namespace abw::sim;

// --------------------------------------------------------------- time ---

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_micros(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kMillisecond), 1.0);
}

TEST(Time, TransmissionTime) {
  // 1500 B at 50 Mb/s = 240 us.
  EXPECT_EQ(transmission_time(1500, 50e6), 240 * kMicrosecond);
  // 40 B at 100 Mb/s = 3.2 us.
  EXPECT_EQ(transmission_time(40, 100e6), from_micros(3.2));
}

// ---------------------------------------------------------- scheduler ---

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  while (!s.empty()) s.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.schedule(7, [&order, i] { order.push_back(i); });
  while (!s.empty()) s.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RejectsPast) {
  Scheduler s;
  s.schedule(10, [] {});
  (void)s.pop();
  EXPECT_THROW(s.schedule(5, [] {}), std::logic_error);
  EXPECT_NO_THROW(s.schedule(10, [] {}));  // same time as last pop is fine
}

TEST(Scheduler, PopOnEmptyThrows) {
  Scheduler s;
  EXPECT_THROW(s.pop(), std::logic_error);
}

// next_time() on an empty queue used to read heap_.front() of an empty
// vector (UB); it must throw like pop() does, and keep doing so after the
// queue drains.
TEST(Scheduler, NextTimeOnEmptyThrows) {
  Scheduler s;
  EXPECT_THROW(s.next_time(), std::logic_error);
  s.schedule(10, [] {});
  EXPECT_EQ(s.next_time(), 10);
  (void)s.pop();
  EXPECT_THROW(s.next_time(), std::logic_error);
}

// Regression for the schedule-in-the-past contract: the documented
// invariant ("t must not be earlier than the most recently popped event
// time") must be ENFORCED, not just tracked, including when the violation
// happens from inside a callback mid-simulation and after the queue has
// drained and refilled.
TEST(Scheduler, RejectsPastFromWithinCallback) {
  Scheduler s;
  bool threw = false;
  s.schedule(100, [&] {
    // The clock is at 100 (this event was just popped); asking for an
    // event at 40 would rewrite history.
    try {
      s.schedule(40, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  while (!s.empty()) s.pop().cb();
  EXPECT_TRUE(threw);
}

TEST(Scheduler, PastBoundaryTracksLatestPop) {
  Scheduler s;
  s.schedule(10, [] {});
  s.schedule(30, [] {});
  (void)s.pop();                           // last popped: 10
  EXPECT_NO_THROW(s.schedule(20, [] {}));  // between pops: legal
  (void)s.pop();                           // last popped: 20
  (void)s.pop();                           // last popped: 30
  EXPECT_THROW(s.schedule(29, [] {}), std::logic_error);
  EXPECT_NO_THROW(s.schedule(30, [] {}));  // boundary is inclusive
  // Draining the queue must not reset the enforcement floor.
  (void)s.pop();
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.schedule(29, [] {}), std::logic_error);
}

// ---------------------------------------------------------- simulator ---

TEST(Simulator, ClockAdvancesBeforeCallback) {
  Simulator sim;
  SimTime seen = -1;
  sim.after(100, [&] { seen = sim.now(); });
  sim.run_until(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, CallbackSchedulingChains) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.after(10, chain);
  };
  sim.after(10, chain);
  sim.run_until_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilConditionStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sim.at(i * 10, [&] { ++count; });
  bool met = sim.run_until_condition(1000, [&] { return count == 3; });
  EXPECT_TRUE(met);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, RunUntilConditionRespectsDeadline) {
  Simulator sim;
  int count = 0;
  sim.at(500, [&] { ++count; });
  bool met = sim.run_until_condition(100, [&] { return count > 0; });
  EXPECT_FALSE(met);
  EXPECT_EQ(count, 0);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.run_until(100);
  EXPECT_THROW(sim.at(50, [] {}), std::logic_error);
  EXPECT_THROW(sim.after(-1, [] {}), std::logic_error);
}

TEST(Simulator, PacketIdsAreUnique) {
  Simulator sim;
  auto a = sim.next_packet_id();
  auto b = sim.next_packet_id();
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------- meter ---

TEST(UtilizationMeter, ExactWindowQueries) {
  UtilizationMeter m(100e6);
  m.add_busy(0, 100);
  m.add_busy(200, 300);
  EXPECT_EQ(m.busy_time(0, 300), 200);
  EXPECT_EQ(m.busy_time(50, 250), 100);   // half of each interval
  EXPECT_EQ(m.busy_time(100, 200), 0);    // the idle gap
  EXPECT_EQ(m.busy_time(250, 1000), 50);
  EXPECT_DOUBLE_EQ(m.utilization(0, 400), 0.5);
  EXPECT_DOUBLE_EQ(m.avail_bw(0, 400), 50e6);
}

TEST(UtilizationMeter, CoalescesBackToBack) {
  UtilizationMeter m(1e6);
  m.add_busy(0, 10);
  m.add_busy(10, 20);  // adjacent: must merge
  EXPECT_EQ(m.interval_count(), 1u);
  EXPECT_EQ(m.busy_time(0, 20), 20);
}

TEST(UtilizationMeter, RejectsOverlapsAndEmpty) {
  UtilizationMeter m(1e6);
  m.add_busy(0, 10);
  EXPECT_THROW(m.add_busy(5, 15), std::logic_error);
  EXPECT_THROW(m.add_busy(20, 20), std::invalid_argument);
  EXPECT_THROW(UtilizationMeter(0.0), std::invalid_argument);
}

TEST(UtilizationMeter, SeriesCoversWindows) {
  UtilizationMeter m(10e6);
  m.add_busy(0, 500);
  auto series = m.avail_bw_series(0, 1000, 250);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);      // fully busy
  EXPECT_DOUBLE_EQ(series[3], 10e6);     // fully idle
}

TEST(UtilizationMeter, MeasurementAttributionSeparatesLoads) {
  UtilizationMeter m(10e6);
  m.add_busy(0, 100, /*measurement=*/false);   // cross
  m.add_busy(100, 200, /*measurement=*/true);  // probe (not coalesced)
  m.add_busy(300, 400, /*measurement=*/true);
  EXPECT_EQ(m.interval_count(), 3u);  // attribution change blocks merging
  EXPECT_EQ(m.busy_time(0, 400), 300);
  EXPECT_EQ(m.measurement_busy_time(0, 400), 200);
  // Cross-only utilization: 100 ns busy over 400 ns => A = 0.75 * C.
  EXPECT_DOUBLE_EQ(m.cross_avail_bw(0, 400), 7.5e6);
  // Partial window over a measurement edge interval.
  EXPECT_EQ(m.measurement_busy_time(150, 350), 100);
}

TEST(UtilizationMeter, SameAttributionStillCoalesces) {
  UtilizationMeter m(1e6);
  m.add_busy(0, 10, true);
  m.add_busy(10, 20, true);
  EXPECT_EQ(m.interval_count(), 1u);
  EXPECT_EQ(m.measurement_busy_time(0, 20), 20);
}

TEST(UtilizationMeter, EmptyMeterIsIdle) {
  UtilizationMeter m(5e6);
  EXPECT_DOUBLE_EQ(m.avail_bw(0, 100), 5e6);
}

// Brute-force reference for the prefix-sum window queries: intersect the
// window with every recorded interval directly (equivalent to summing a
// per-nanosecond indicator).  The meter's binary-search + edge-trimming
// fast path must agree exactly on EVERY window, in particular windows that
// partially cover measurement and non-measurement edge intervals and
// windows that fall fully inside one busy interval.
struct RefInterval {
  SimTime start, end;
  bool meas;
};

SimTime ref_busy(const std::vector<RefInterval>& iv, SimTime t1, SimTime t2,
                 bool meas_only) {
  SimTime total = 0;
  for (const auto& i : iv) {
    if (meas_only && !i.meas) continue;
    SimTime lo = std::max(i.start, t1);
    SimTime hi = std::min(i.end, t2);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

TEST(UtilizationMeter, WindowTrimmingMatchesBruteForceExhaustively) {
  // Mixed attribution, an idle gap, and adjacent intervals whose
  // attribution flips (so they stay separate): 5 stored intervals in
  // [2, 28) with edges at every flavor of partial coverage reachable.
  const std::vector<RefInterval> iv = {
      {2, 6, false}, {6, 9, true}, {12, 18, false}, {18, 20, true},
      {24, 28, false}};
  UtilizationMeter m(1e6);
  for (const auto& i : iv) m.add_busy(i.start, i.end, i.meas);
  ASSERT_EQ(m.interval_count(), iv.size());

  for (SimTime t1 = 0; t1 <= 30; ++t1) {
    for (SimTime t2 = t1 + 1; t2 <= 30; ++t2) {
      EXPECT_EQ(m.busy_time(t1, t2), ref_busy(iv, t1, t2, false))
          << "busy_time window [" << t1 << ", " << t2 << ")";
      EXPECT_EQ(m.measurement_busy_time(t1, t2), ref_busy(iv, t1, t2, true))
          << "measurement_busy_time window [" << t1 << ", " << t2 << ")";
      SimTime cross = ref_busy(iv, t1, t2, false) - ref_busy(iv, t1, t2, true);
      double u = static_cast<double>(cross) / static_cast<double>(t2 - t1);
      EXPECT_DOUBLE_EQ(m.cross_avail_bw(t1, t2), 1e6 * (1.0 - u))
          << "cross_avail_bw window [" << t1 << ", " << t2 << ")";
    }
  }
}

// Randomized version of the exhaustive check above: hundreds of intervals
// with random lengths/gaps/attribution, thousands of random windows.  The
// fixed seed keeps it deterministic; the scale exercises prefix-sum
// cancellation and two-pointer paths far beyond the hand-built cases.
TEST(UtilizationMeter, RandomizedQueriesMatchBruteForceReference) {
  abw::stats::Rng rng(0xab5eed);
  UtilizationMeter m(1e8);
  std::vector<RefInterval> iv;
  SimTime t = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1 + static_cast<SimTime>(rng.uniform(0.0, 300.0));
    SimTime len = 1 + static_cast<SimTime>(rng.uniform(0.0, 200.0));
    bool meas = rng.bernoulli(0.3);
    m.add_busy(t, t + len, meas);
    iv.push_back({t, t + len, meas});
    t += len;
  }
  const double horizon = static_cast<double>(t);
  for (int q = 0; q < 3000; ++q) {
    SimTime t1 = static_cast<SimTime>(rng.uniform(0.0, horizon));
    SimTime t2 = t1 + 1 + static_cast<SimTime>(rng.uniform(0.0, horizon / 4));
    SimTime busy = ref_busy(iv, t1, t2, false);
    SimTime meas = ref_busy(iv, t1, t2, true);
    ASSERT_EQ(m.busy_time(t1, t2), busy)
        << "busy_time window [" << t1 << ", " << t2 << ")";
    ASSERT_EQ(m.measurement_busy_time(t1, t2), meas)
        << "measurement_busy_time window [" << t1 << ", " << t2 << ")";
    double span = static_cast<double>(t2 - t1);
    double cross_u = static_cast<double>(busy - meas) / span;
    ASSERT_DOUBLE_EQ(m.cross_avail_bw(t1, t2), 1e8 * (1.0 - cross_u))
        << "cross_avail_bw window [" << t1 << ", " << t2 << ")";
  }
}

// The monotone two-pointer series sweep must produce bit-identical doubles
// to issuing one prefix-sum query per window (which the randomized test
// above ties to the brute-force reference).
TEST(UtilizationMeter, SeriesSweepMatchesPerWindowQueries) {
  abw::stats::Rng rng(0x5e71e5);
  UtilizationMeter m(1e8);
  SimTime t = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1 + static_cast<SimTime>(rng.uniform(0.0, 300.0));
    SimTime len = 1 + static_cast<SimTime>(rng.uniform(0.0, 200.0));
    m.add_busy(t, t + len, rng.bernoulli(0.3));
    t += len;
  }
  for (SimTime tau : {37, 250, 4001}) {
    for (bool cross : {false, true}) {
      auto series = m.avail_bw_series(0, t, tau, cross);
      ASSERT_EQ(series.size(), static_cast<std::size_t>(t / tau));
      for (std::size_t k = 0; k < series.size(); ++k) {
        SimTime w1 = static_cast<SimTime>(k) * tau, w2 = w1 + tau;
        double expect = cross ? m.cross_avail_bw(w1, w2) : m.avail_bw(w1, w2);
        ASSERT_DOUBLE_EQ(series[k], expect)
            << "tau=" << tau << " cross=" << cross << " window " << k;
      }
    }
  }
}

TEST(UtilizationMeter, WindowFullyInsideOneBusyInterval) {
  UtilizationMeter m(8e6);
  m.add_busy(100, 200, /*measurement=*/false);
  m.add_busy(300, 400, /*measurement=*/true);
  // Both edges of the window trim the SAME stored interval.
  EXPECT_EQ(m.busy_time(130, 170), 40);
  EXPECT_DOUBLE_EQ(m.utilization(130, 170), 1.0);
  EXPECT_DOUBLE_EQ(m.avail_bw(130, 170), 0.0);
  EXPECT_EQ(m.measurement_busy_time(130, 170), 0);
  EXPECT_DOUBLE_EQ(m.cross_avail_bw(130, 170), 0.0);
  // Same, inside the measurement interval: cross avail-bw is full capacity.
  EXPECT_EQ(m.busy_time(320, 380), 60);
  EXPECT_EQ(m.measurement_busy_time(320, 380), 60);
  EXPECT_DOUBLE_EQ(m.cross_avail_bw(320, 380), 8e6);
}

TEST(UtilizationMeter, WindowStraddlingMixedAttributionEdges) {
  UtilizationMeter m(2e6);
  m.add_busy(0, 10, /*measurement=*/true);    // meas edge, partially covered
  m.add_busy(10, 20, /*measurement=*/false);  // cross middle
  m.add_busy(20, 30, /*measurement=*/true);   // meas edge, partially covered
  // Window [5, 25): 5 of each meas edge + all 10 cross.
  EXPECT_EQ(m.busy_time(5, 25), 20);
  EXPECT_EQ(m.measurement_busy_time(5, 25), 10);
  EXPECT_DOUBLE_EQ(m.cross_avail_bw(5, 25), 2e6 * (1.0 - 10.0 / 20.0));
  // Window whose edges land exactly on attribution flips (no trimming).
  EXPECT_EQ(m.busy_time(10, 20), 10);
  EXPECT_EQ(m.measurement_busy_time(10, 20), 0);
  // Window covering only idle time after the last interval.
  EXPECT_EQ(m.busy_time(30, 40), 0);
  EXPECT_EQ(m.measurement_busy_time(30, 40), 0);
}

// --------------------------------------------------------------- link ---

struct Collector final : PacketHandler {
  std::vector<Packet> got;
  Simulator* sim = nullptr;
  std::vector<SimTime> at;
  void handle(Packet pkt) override {
    got.push_back(pkt);
    if (sim) at.push_back(sim->now());
  }
};

TEST(Link, ServiceTimeAndPropagation) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 10e6;            // 1000 B -> 800 us
  cfg.propagation_delay = kMillisecond;
  Link link(sim, "l", cfg);
  Collector sink;
  sink.sim = &sim;
  link.set_next(&sink);

  Packet p;
  p.size_bytes = 1000;
  sim.at(0, [&] { link.handle(p); });
  sim.run_until_idle();
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.at[0], from_micros(800) + kMillisecond);
}

TEST(Link, FifoOrderPreserved) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 10e6;
  Link link(sim, "l", cfg);
  Collector sink;
  link.set_next(&sink);
  for (std::uint32_t i = 0; i < 10; ++i) {
    Packet p;
    p.seq = i;
    p.size_bytes = 500;
    sim.at(0, [&link, p] { link.handle(p); });
  }
  sim.run_until_idle();
  ASSERT_EQ(sink.got.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sink.got[i].seq, i);
}

TEST(Link, BackToBackSerialization) {
  // Two packets arriving together leave exactly one transmission apart.
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 50e6;
  Link link(sim, "l", cfg);
  Collector sink;
  sink.sim = &sim;
  link.set_next(&sink);
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.size_bytes = 1500;
    sim.at(0, [&link, p] { link.handle(p); });
  }
  sim.run_until_idle();
  ASSERT_EQ(sink.at.size(), 2u);
  EXPECT_EQ(sink.at[1] - sink.at[0], transmission_time(1500, 50e6));
}

TEST(Link, DropTailOnQueueLimit) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 1e6;
  cfg.queue_limit_bytes = 3000;  // room for two 1500 B packets
  Link link(sim, "l", cfg);
  Collector sink;
  link.set_next(&sink);
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.size_bytes = 1500;
    sim.at(0, [&link, p] { link.handle(p); });
  }
  sim.run_until_idle();
  EXPECT_EQ(link.stats().packets_dropped, 3u);
  EXPECT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(link.stats().packets_in, 5u);
  EXPECT_EQ(link.stats().packets_out, 2u);
}

TEST(Link, MeterMatchesTransmissions) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 8e6;  // 1000 B = 1 ms
  Link link(sim, "l", cfg);
  Collector sink;
  link.set_next(&sink);
  for (int i = 0; i < 4; ++i) {
    Packet p;
    p.size_bytes = 1000;
    sim.at(i * 2 * kMillisecond, [&link, p] { link.handle(p); });
  }
  sim.run_until_idle();
  // 4 ms busy within the 8 ms span -> utilization 0.5.
  EXPECT_DOUBLE_EQ(link.meter().utilization(0, 8 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(link.meter().avail_bw(0, 8 * kMillisecond), 4e6);
}

TEST(Link, ArrivalTapSeesEveryArrival) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 1e6;
  cfg.queue_limit_bytes = 1500;  // second packet will drop
  Link link(sim, "l", cfg);
  Collector sink;
  link.set_next(&sink);
  int taps = 0;
  link.set_arrival_tap([&](const Packet&, SimTime) { ++taps; });
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.size_bytes = 1500;
    sim.at(0, [&link, p] { link.handle(p); });
  }
  sim.run_until_idle();
  EXPECT_EQ(taps, 2);  // tap fires before the drop decision
  EXPECT_EQ(link.stats().packets_dropped, 1u);
}

TEST(Link, RejectsBadConfig) {
  Simulator sim;
  LinkConfig bad;
  bad.capacity_bps = 0.0;
  EXPECT_THROW(Link(sim, "x", bad), std::invalid_argument);
}

// --------------------------------------------------------------- path ---

TEST(Path, EndToEndTraversesAllHops) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 10e6;
  Path path(sim, {cfg, cfg, cfg});
  Collector sink;
  path.set_receiver(&sink);
  Packet p;
  p.size_bytes = 1000;
  p.exit_hop = kEndToEnd;
  sim.at(0, [&] { path.inject(0, p); });
  sim.run_until_idle();
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(path.link(0).stats().packets_out, 1u);
  EXPECT_EQ(path.link(2).stats().packets_out, 1u);
}

TEST(Path, OneHopCrossExitsEarly) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 10e6;
  Path path(sim, {cfg, cfg, cfg});
  Collector sink;
  path.set_receiver(&sink);
  Packet p;
  p.size_bytes = 1000;
  p.exit_hop = 1;  // enters hop 1, leaves after hop 1
  sim.at(0, [&] { path.inject(1, p); });
  sim.run_until_idle();
  EXPECT_EQ(sink.got.size(), 0u);
  EXPECT_EQ(path.cross_sink().packets(), 1u);
  EXPECT_EQ(path.link(1).stats().packets_out, 1u);
  EXPECT_EQ(path.link(2).stats().packets_in, 0u);
}

TEST(Path, AvailBwIsMinimumOverLinks) {
  Simulator sim;
  LinkConfig fast, slow;
  fast.capacity_bps = 100e6;
  slow.capacity_bps = 10e6;
  Path path(sim, {fast, slow});
  Collector sink;
  path.set_receiver(&sink);
  // Idle path: avail-bw = min capacity.
  EXPECT_DOUBLE_EQ(path.avail_bw(0, kSecond), 10e6);
  EXPECT_EQ(path.tight_link(0, kSecond), 1u);
  EXPECT_DOUBLE_EQ(path.narrow_capacity(), 10e6);
}

TEST(Path, BaseOwdSumsHops) {
  Simulator sim;
  LinkConfig cfg;
  cfg.capacity_bps = 10e6;
  cfg.propagation_delay = kMillisecond;
  Path path(sim, {cfg, cfg});
  EXPECT_EQ(path.base_owd(1000),
            2 * (transmission_time(1000, 10e6) + kMillisecond));
}

TEST(Path, RejectsEmptyAndOutOfRange) {
  Simulator sim;
  EXPECT_THROW(Path(sim, {}), std::invalid_argument);
  LinkConfig cfg;
  Path path(sim, {cfg});
  Packet p;
  EXPECT_THROW(path.inject(3, p), std::out_of_range);
}

// -------------------------------------------------------------- demux ---

TEST(TypeDemux, RoutesByType) {
  TypeDemux demux;
  Collector probes, tcp;
  demux.register_handler(PacketType::kProbe, &probes);
  demux.register_handler(PacketType::kTcpData, &tcp);
  Packet p;
  p.type = PacketType::kProbe;
  demux.handle(p);
  p.type = PacketType::kTcpData;
  demux.handle(p);
  p.type = PacketType::kCross;  // unregistered -> fallback
  demux.handle(p);
  EXPECT_EQ(probes.got.size(), 1u);
  EXPECT_EQ(tcp.got.size(), 1u);
  EXPECT_EQ(demux.fallback().packets(), 1u);
}

}  // namespace
