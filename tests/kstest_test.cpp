// Tests for the KS goodness-of-fit machinery, then its application:
// distributional validation of every stochastic generator in the library.
#include <gtest/gtest.h>

#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/kstest.hpp"
#include "stats/rng.hpp"
#include "traffic/pareto_gaps.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;
using abw::sim::kSecond;

// ----------------------------------------------------------- machinery ---

TEST(KsTest, PerfectFitHasHighPvalue) {
  // Deterministic quantile sample of the uniform: the best possible fit.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back((i + 0.5) / 1000.0);
  double d = stats::ks_statistic(xs, stats::uniform_cdf(0, 1));
  EXPECT_LT(d, 0.002);
  EXPECT_GT(stats::ks_pvalue(d, xs.size()), 0.99);
}

TEST(KsTest, ExponentialSampleFitsExponential) {
  stats::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(2.0));
  EXPECT_TRUE(stats::ks_fits(xs, stats::exponential_cdf(2.0)));
}

TEST(KsTest, ExponentialSampleRejectsWrongMean) {
  stats::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(2.0));
  EXPECT_FALSE(stats::ks_fits(xs, stats::exponential_cdf(3.0)));
}

TEST(KsTest, ParetoSampleFitsPareto) {
  stats::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.pareto(1.5, 2.0));
  EXPECT_TRUE(stats::ks_fits(xs, stats::pareto_cdf(1.5, 2.0)));
  EXPECT_FALSE(stats::ks_fits(xs, stats::exponential_cdf(6.0)));
}

TEST(KsTest, NormalSampleRejectsUniform) {
  stats::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.normal());
  EXPECT_FALSE(stats::ks_fits(xs, stats::uniform_cdf(-3, 3)));
}

TEST(KsTest, PvalueMonotoneInStatistic) {
  EXPECT_GT(stats::ks_pvalue(0.01, 1000), stats::ks_pvalue(0.05, 1000));
  EXPECT_GT(stats::ks_pvalue(0.05, 100), stats::ks_pvalue(0.05, 10000));
  EXPECT_DOUBLE_EQ(stats::ks_pvalue(0.0, 100), 1.0);
}

TEST(KsTest, RejectsDegenerateInputs) {
  EXPECT_THROW(stats::ks_statistic({}, stats::uniform_cdf(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(stats::exponential_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(stats::pareto_cdf(1.5, 0.0), std::invalid_argument);
  EXPECT_THROW(stats::uniform_cdf(1.0, 1.0), std::invalid_argument);
}

// ------------------------------------------- generator distributions ---

struct TapFixture {
  sim::Simulator simu;
  sim::Path path;
  sim::CountingSink sink;
  std::vector<double> gaps;
  sim::SimTime last = -1;

  TapFixture() : path(simu, {make_cfg()}) {
    path.set_receiver(&sink);
    path.link(0).set_arrival_tap([this](const sim::Packet&, sim::SimTime t) {
      if (last >= 0) gaps.push_back(sim::to_seconds(t - last));
      last = t;
    });
  }
  static sim::LinkConfig make_cfg() {
    sim::LinkConfig cfg;
    cfg.capacity_bps = 1e9;
    cfg.queue_limit_bytes = 64 << 20;
    return cfg;
  }
};

TEST(GeneratorDistribution, PoissonGapsPassKsAgainstExponential) {
  TapFixture f;
  traffic::PoissonGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(5), 25e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 30 * kSecond);
  f.simu.run_until(30 * kSecond);
  ASSERT_GT(f.gaps.size(), 5000u);
  double mean_gap = 1500.0 * 8.0 / 25e6;
  EXPECT_TRUE(stats::ks_fits(f.gaps, stats::exponential_cdf(mean_gap)));
}

TEST(GeneratorDistribution, ParetoGapsPassKsAgainstPareto) {
  TapFixture f;
  constexpr double kShape = 1.9, kRate = 25e6;
  traffic::ParetoGapGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(6),
                                kRate, 1500, kShape);
  g.start(0, 30 * kSecond);
  f.simu.run_until(30 * kSecond);
  ASSERT_GT(f.gaps.size(), 3000u);
  double mean_gap = 1500.0 * 8.0 / kRate;
  double scale = mean_gap * (kShape - 1.0) / kShape;
  EXPECT_TRUE(stats::ks_fits(f.gaps, stats::pareto_cdf(kShape, scale)));
  // ... and they are distinguishable from exponential gaps.
  EXPECT_FALSE(stats::ks_fits(f.gaps, stats::exponential_cdf(mean_gap)));
}

TEST(GeneratorDistribution, RngUniformPassesKs) {
  stats::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.uniform01());
  EXPECT_TRUE(stats::ks_fits(xs, stats::uniform_cdf(0, 1)));
}

}  // namespace
