// Tests for the cross-traffic generators: offered rates converge to the
// configured means, packet-size distributions are honoured, ON-OFF
// burstiness and the aggregate's self-similarity emerge as designed.
#include <gtest/gtest.h>

#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/hurst.hpp"
#include "stats/moments.hpp"
#include "traffic/aggregate.hpp"
#include "traffic/cbr.hpp"
#include "traffic/fgn_rate.hpp"
#include "traffic/packet_size.hpp"
#include "traffic/pareto_onoff.hpp"
#include "traffic/poisson.hpp"
#include "traffic/trace_replay.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

struct Fixture {
  sim::Simulator simu;
  sim::Path path;
  sim::CountingSink sink;

  explicit Fixture(double capacity_bps = 1e9) : path(simu, {make_cfg(capacity_bps)}) {
    path.set_receiver(&sink);
  }
  static sim::LinkConfig make_cfg(double c) {
    sim::LinkConfig cfg;
    cfg.capacity_bps = c;
    cfg.queue_limit_bytes = 64 << 20;  // effectively lossless
    return cfg;
  }
};

// -------------------------------------------------------- size dists ---

TEST(SizeDistribution, FixedAlwaysSame) {
  stats::Rng r(1);
  auto d = traffic::SizeDistribution::fixed(1500);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(r), 1500u);
  EXPECT_DOUBLE_EQ(d.mean(), 1500.0);
}

TEST(SizeDistribution, ModalProportions) {
  stats::Rng r(2);
  auto d = traffic::SizeDistribution::modal({{40, 1.0}, {1500, 3.0}});
  int small = 0, big = 0;
  for (int i = 0; i < 40000; ++i) (d.sample(r) == 40 ? small : big)++;
  EXPECT_NEAR(static_cast<double>(small) / 40000, 0.25, 0.02);
  EXPECT_NEAR(d.mean(), 0.25 * 40 + 0.75 * 1500, 1e-9);
}

TEST(SizeDistribution, InternetMixMean) {
  auto d = traffic::SizeDistribution::internet_mix();
  EXPECT_NEAR(d.mean(), 0.4 * 40 + 0.2 * 576 + 0.4 * 1500, 1e-9);
}

TEST(SizeDistribution, RejectsInvalid) {
  EXPECT_THROW(traffic::SizeDistribution::fixed(0), std::invalid_argument);
  EXPECT_THROW(traffic::SizeDistribution::modal({}), std::invalid_argument);
  EXPECT_THROW(traffic::SizeDistribution::modal({{100, -1.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- CBR ---

TEST(Cbr, OfferedRateIsExact) {
  Fixture f;
  traffic::CbrGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(7), 25e6, 1500);
  g.start(0, 10 * kSecond);
  f.simu.run_until(10 * kSecond);
  EXPECT_NEAR(g.offered_rate(), 25e6, 25e6 * 0.001);
}

TEST(Cbr, PerfectlyPeriodicArrivals) {
  Fixture f;
  std::vector<sim::SimTime> arrivals;
  f.path.link(0).set_arrival_tap(
      [&](const sim::Packet&, sim::SimTime t) { arrivals.push_back(t); });
  traffic::CbrGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(7), 12e6, 1500);
  g.start(0, kSecond);
  f.simu.run_until(kSecond);
  ASSERT_GT(arrivals.size(), 10u);
  sim::SimTime gap = arrivals[1] - arrivals[0];
  for (std::size_t i = 2; i < arrivals.size(); ++i)
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], gap);
  EXPECT_EQ(gap, sim::transmission_time(1500, 12e6));
}

TEST(Cbr, StopsAtWindowEnd) {
  Fixture f;
  traffic::CbrGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(7), 10e6, 1500);
  g.start(0, 100 * kMillisecond);
  f.simu.run_until(10 * kSecond);
  auto sent = g.packets_sent();
  EXPECT_GT(sent, 0u);
  // 10 Mb/s, 1500 B => 1.2 ms gaps => ~83 packets in 100 ms.
  EXPECT_LE(sent, 85u);
  f.simu.run_until(20 * kSecond);
  EXPECT_EQ(g.packets_sent(), sent);  // nothing after the window
}

TEST(Cbr, StartTwiceThrows) {
  Fixture f;
  traffic::CbrGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(7), 10e6, 1500);
  g.start(0, kSecond);
  EXPECT_THROW(g.start(0, kSecond), std::logic_error);
}

// ------------------------------------------------------------ Poisson ---

TEST(Poisson, RateConvergesWithFixedSizes) {
  Fixture f;
  traffic::PoissonGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(5), 25e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 30 * kSecond);
  f.simu.run_until(30 * kSecond);
  EXPECT_NEAR(g.offered_rate(), 25e6, 25e6 * 0.03);
}

TEST(Poisson, RateConvergesWithTrimodalSizes) {
  Fixture f;
  traffic::PoissonGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(5), 40e6,
                              traffic::SizeDistribution::internet_mix());
  g.start(0, 30 * kSecond);
  f.simu.run_until(30 * kSecond);
  EXPECT_NEAR(g.offered_rate(), 40e6, 40e6 * 0.05);
}

TEST(Poisson, InterarrivalsAreExponential) {
  Fixture f;
  std::vector<double> gaps;
  sim::SimTime last = -1;
  f.path.link(0).set_arrival_tap([&](const sim::Packet&, sim::SimTime t) {
    if (last >= 0) gaps.push_back(sim::to_seconds(t - last));
    last = t;
  });
  traffic::PoissonGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(5), 25e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 20 * kSecond);
  f.simu.run_until(20 * kSecond);
  ASSERT_GT(gaps.size(), 1000u);
  double cv = stats::stddev(gaps) / stats::mean(gaps);
  EXPECT_NEAR(cv, 1.0, 0.1);  // exponential CV = 1
}

// -------------------------------------------------------- Pareto OnOff ---

TEST(ParetoOnOff, LongRunRateConverges) {
  Fixture f;
  traffic::ParetoOnOffConfig cfg;
  cfg.mean_rate_bps = 25e6;
  cfg.peak_rate_bps = 50e6;
  traffic::ParetoOnOffGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(6), cfg);
  g.start(0, 120 * kSecond);
  f.simu.run_until(120 * kSecond);
  // Heavy-tailed OFF times converge slowly; 15% tolerance over 2 minutes.
  EXPECT_NEAR(g.offered_rate(), 25e6, 25e6 * 0.15);
}

TEST(ParetoOnOff, BurstsAtPeakRate) {
  Fixture f;
  std::vector<sim::SimTime> arrivals;
  f.path.link(0).set_arrival_tap(
      [&](const sim::Packet&, sim::SimTime t) { arrivals.push_back(t); });
  traffic::ParetoOnOffConfig cfg;
  cfg.mean_rate_bps = 10e6;
  cfg.peak_rate_bps = 40e6;
  traffic::ParetoOnOffGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(6), cfg);
  g.start(0, 20 * kSecond);
  f.simu.run_until(20 * kSecond);
  // Within bursts, consecutive gaps equal the peak-rate gap.
  sim::SimTime peak_gap = sim::transmission_time(1500, 40e6);
  std::size_t at_peak = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    if (arrivals[i] - arrivals[i - 1] == peak_gap) ++at_peak;
  EXPECT_GT(at_peak, arrivals.size() / 4);
}

TEST(ParetoOnOff, MoreVariableThanPoissonAtShortScales) {
  auto windowed_variance = [](auto make_gen) {
    Fixture f;
    auto g = make_gen(f);
    g->start(0, 60 * kSecond);
    f.simu.run_until(60 * kSecond);
    auto series = f.path.link(0).meter().avail_bw_series(
        kSecond, 59 * kSecond, 10 * kMillisecond);
    return stats::variance(series);
  };
  double var_poisson = windowed_variance([](Fixture& f) {
    return std::make_unique<traffic::PoissonGenerator>(
        f.simu, f.path, 0, false, 1, stats::Rng(6), 25e6,
        traffic::SizeDistribution::fixed(1500));
  });
  double var_onoff = windowed_variance([](Fixture& f) {
    traffic::ParetoOnOffConfig cfg;
    cfg.mean_rate_bps = 25e6;
    cfg.peak_rate_bps = 100e6;
    return std::make_unique<traffic::ParetoOnOffGenerator>(
        f.simu, f.path, 0, false, 1, stats::Rng(6), cfg);
  });
  EXPECT_GT(var_onoff, 1.5 * var_poisson);
}

TEST(ParetoOnOff, RejectsBadConfig) {
  Fixture f;
  traffic::ParetoOnOffConfig bad;
  bad.mean_rate_bps = 50e6;
  bad.peak_rate_bps = 25e6;  // peak < mean
  EXPECT_THROW(traffic::ParetoOnOffGenerator(f.simu, f.path, 0, false, 1,
                                             stats::Rng(1), bad),
               std::invalid_argument);
  bad.peak_rate_bps = 100e6;
  bad.off_shape = 1.0;  // infinite mean
  EXPECT_THROW(traffic::ParetoOnOffGenerator(f.simu, f.path, 0, false, 1,
                                             stats::Rng(1), bad),
               std::invalid_argument);
}

// ----------------------------------------------------------- aggregate ---

TEST(Aggregate, TotalRateSplitsAcrossSources) {
  Fixture f;
  stats::Rng rng(3);
  traffic::ParetoOnOffConfig per;
  per.peak_rate_bps = 10e6;
  traffic::AggregateOnOff agg(f.simu, f.path, 0, false, 100, rng, 40e6, 16, per);
  EXPECT_EQ(agg.source_count(), 16u);
  agg.start(0, 60 * kSecond);
  f.simu.run_until(60 * kSecond);
  double rate = static_cast<double>(agg.bytes_sent()) * 8.0 / 60.0;
  EXPECT_NEAR(rate, 40e6, 40e6 * 0.10);
}

TEST(Aggregate, ExhibitsLongRangeDependence) {
  // Taqqu: aggregated Pareto(alpha=1.5) ON-OFF => H ~ (3-1.5)/2 = 0.75.
  Fixture f(1e9);
  stats::Rng rng(4);
  traffic::ParetoOnOffConfig per;
  per.peak_rate_bps = 30e6;
  traffic::AggregateOnOff agg(f.simu, f.path, 0, false, 100, rng, 100e6, 32, per);
  agg.start(0, 120 * kSecond);
  f.simu.run_until(120 * kSecond);
  auto series = f.path.link(0).meter().avail_bw_series(kSecond, 119 * kSecond,
                                                       10 * kMillisecond);
  double h = stats::hurst_variance_time(series);
  EXPECT_GT(h, 0.6);  // clearly long-range dependent (IID would be ~0.5)
}

// ------------------------------------------------------------ fGn rate ---

TEST(FgnRate, MeanRateConverges) {
  Fixture f;
  traffic::FgnRateConfig cfg;
  cfg.mean_rate_bps = 50e6;
  cfg.rel_std = 0.2;
  traffic::FgnRateGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(8), cfg);
  g.start(0, 30 * kSecond);
  f.simu.run_until(30 * kSecond);
  EXPECT_NEAR(g.offered_rate(), 50e6, 50e6 * 0.05);
}

TEST(FgnRate, ProducesTargetHurst) {
  Fixture f(1e9);
  traffic::FgnRateConfig cfg;
  cfg.mean_rate_bps = 80e6;
  cfg.rel_std = 0.3;
  cfg.hurst = 0.85;
  traffic::FgnRateGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(8), cfg);
  g.start(0, 60 * kSecond);
  f.simu.run_until(60 * kSecond);
  auto series = f.path.link(0).meter().avail_bw_series(0, 60 * kSecond,
                                                       2 * kMillisecond);
  double h = stats::hurst_variance_time(series);
  EXPECT_GT(h, 0.7);
}

TEST(FgnRate, RejectsBadConfig) {
  Fixture f;
  traffic::FgnRateConfig bad;
  bad.hurst = 1.5;
  EXPECT_THROW(
      traffic::FgnRateGenerator(f.simu, f.path, 0, false, 1, stats::Rng(1), bad),
      std::invalid_argument);
}

// --------------------------------------------------------- trace replay ---

TEST(TraceReplay, InjectsExactlyTheRecords) {
  Fixture f;
  std::vector<sim::SimTime> arrivals;
  std::vector<std::uint32_t> sizes;
  f.path.link(0).set_arrival_tap([&](const sim::Packet& p, sim::SimTime t) {
    arrivals.push_back(t);
    sizes.push_back(p.size_bytes);
  });
  traffic::TraceReplayer rep(f.simu, f.path, 0, false, 9);
  std::vector<traffic::ReplayRecord> recs = {
      {10 * kMillisecond, 100}, {20 * kMillisecond, 200}, {21 * kMillisecond, 300}};
  EXPECT_EQ(rep.schedule(recs), 3u);
  f.simu.run_until(kSecond);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 10 * kMillisecond);
  EXPECT_EQ(sizes[2], 300u);
  EXPECT_EQ(rep.packets_sent(), 3u);
}

TEST(TraceReplay, RejectsUnsortedTrace) {
  Fixture f;
  traffic::TraceReplayer rep(f.simu, f.path, 0, false, 9);
  std::vector<traffic::ReplayRecord> recs = {{20, 100}, {10, 100}};
  EXPECT_THROW(rep.schedule(recs), std::invalid_argument);
}

// ------------------------------------------------------- conservation ---

TEST(Conservation, PacketsInEqualsOutPlusDrops) {
  Fixture f(20e6);  // slow link so the Poisson burst occasionally drops
  f.path.link(0).set_arrival_tap(nullptr);
  traffic::PoissonGenerator g(f.simu, f.path, 0, false, 1, stats::Rng(5), 19e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 20 * kSecond);
  f.simu.run_until(20 * kSecond);
  f.simu.run_until_idle();
  const auto& st = f.path.link(0).stats();
  EXPECT_EQ(st.packets_in, st.packets_out + st.packets_dropped);
  EXPECT_EQ(st.packets_in, g.packets_sent());
  EXPECT_EQ(f.sink.packets(), st.packets_out);
}

}  // namespace
