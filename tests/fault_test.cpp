// Fault-injection layer tests: Gilbert-Elliott bursty loss, duplication,
// reordering, capacity dynamics (with mid-transmission re-planning and
// exact piecewise ground truth), the fluid/fault mutual-exclusion
// guards, per-stream impairment accounting, estimator limits with
// structured aborts, and the fault-tolerant batch runner.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "probe/session.hpp"
#include "probe/stream_spec.hpp"
#include "runner/batch.hpp"
#include "sim/fault.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/rng.hpp"
#include "traffic/cbr.hpp"

namespace {

using namespace abw;
using namespace abw::sim;

// A link feeding a counting sink, with helpers to pour packets through.
struct LinkFixture {
  Simulator simu;
  Link link;
  CountingSink sink;

  explicit LinkFixture(double capacity = 10e6, SimTime prop = 0)
      : link(simu, "L", make_cfg(capacity, prop)) {
    link.set_next(&sink);
  }
  static LinkConfig make_cfg(double c, SimTime prop) {
    LinkConfig cfg;
    cfg.capacity_bps = c;
    cfg.propagation_delay = prop;
    return cfg;
  }
  // Injects `n` packets of `size` bytes at interval `gap`, starting now.
  void pour(std::size_t n, std::uint32_t size, SimTime gap) {
    SimTime t = simu.now();
    for (std::size_t i = 0; i < n; ++i, t += gap) {
      simu.at(t, [this, size, i] {
        Packet pkt;
        pkt.id = simu.next_packet_id();
        pkt.size_bytes = size;
        pkt.seq = static_cast<std::uint32_t>(i);
        pkt.send_time = simu.now();
        link.handle(pkt);
      });
    }
    simu.run_until(t + kSecond);
    simu.run_until_idle();
  }
};

// ------------------------------------------------ Gilbert-Elliott loss ---

TEST(GilbertElliottLoss, StationaryLossRateMatchesChain) {
  // p_gb/(p_gb+p_bg) = 0.015/0.050 = 30% average loss.
  LinkFixture f(100e6);
  LinkFaults faults;
  faults.gilbert.p_good_bad = 0.015;
  faults.gilbert.p_bad_good = 0.035;
  f.link.set_faults(faults);
  f.pour(20000, 1000, 100 * kMicrosecond);

  const LinkStats& st = f.link.stats();
  EXPECT_EQ(st.packets_in, 20000u);
  EXPECT_EQ(st.packets_lost, st.packets_ge_lost);
  double loss = static_cast<double>(st.packets_ge_lost) /
                static_cast<double>(st.packets_in);
  EXPECT_NEAR(loss, 0.30, 0.05);
  EXPECT_EQ(st.packets_out + st.packets_lost, st.packets_in);
}

TEST(GilbertElliottLoss, LossIsBursty) {
  // Mean burst length 1/p_bad_good = 25 packets: consecutive losses must
  // cluster far beyond what Bernoulli loss at the same rate produces.
  LinkFixture f(100e6);
  LinkFaults faults;
  faults.gilbert.p_good_bad = 0.012;
  faults.gilbert.p_bad_good = 0.04;
  f.link.set_faults(faults);

  // Tap arrivals and compare against deliveries to reconstruct the loss
  // pattern: a packet is lost iff its seq never reaches the sink.
  std::vector<bool> lost(20000, true);
  f.sink.set_on_packet([&](const Packet& p) { lost[p.seq] = false; });
  f.pour(20000, 1000, 100 * kMicrosecond);

  std::size_t bursts = 0, lost_total = 0;
  bool in_burst = false;
  for (bool l : lost) {
    if (l) {
      ++lost_total;
      if (!in_burst) ++bursts;
    }
    in_burst = l;
  }
  ASSERT_GT(bursts, 0u);
  double mean_burst =
      static_cast<double>(lost_total) / static_cast<double>(bursts);
  EXPECT_GT(mean_burst, 5.0);  // Bernoulli at 23% would give ~1.3
}

TEST(GilbertElliottLoss, DeterministicAcrossRuns) {
  auto run = [] {
    LinkFixture f(100e6);
    LinkFaults faults;
    faults.gilbert.p_good_bad = 0.02;
    faults.gilbert.p_bad_good = 0.05;
    faults.duplicate_prob = 0.01;
    f.link.set_faults(faults);
    f.pour(5000, 1000, 100 * kMicrosecond);
    return f.link.stats();
  };
  LinkStats a = run(), b = run();
  EXPECT_EQ(a.packets_ge_lost, b.packets_ge_lost);
  EXPECT_EQ(a.packets_duplicated, b.packets_duplicated);
  EXPECT_EQ(a.packets_out, b.packets_out);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
}

// ------------------------------------------- duplication & reordering ---

TEST(FaultDuplication, DuplicatesConsumeCapacityAndAreMetered) {
  LinkFixture f;
  LinkFaults faults;
  faults.duplicate_prob = 0.2;
  f.link.set_faults(faults);
  f.pour(5000, 1000, kMillisecond);

  const LinkStats& st = f.link.stats();
  EXPECT_NEAR(static_cast<double>(st.packets_duplicated), 1000.0, 150.0);
  EXPECT_EQ(st.packets_out, st.packets_in + st.packets_duplicated);
  EXPECT_EQ(f.sink.packets(), st.packets_out);
  // Every duplicate was serialized: busy time covers in + duplicated.
  SimTime per_pkt = transmission_time(1000, 10e6);
  SimTime busy = f.link.meter().busy_time(0, f.simu.now());
  EXPECT_EQ(busy, static_cast<SimTime>(st.packets_out) * per_pkt);
}

TEST(FaultReordering, DelayedPacketsArriveOutOfOrder) {
  // 2 ms extra delay on a quarter of departures, back-to-back packets:
  // held-back packets must be overtaken by later seqs at the sink.
  LinkFixture f(100e6);
  LinkFaults faults;
  faults.reorder_prob = 0.25;
  faults.reorder_extra_max = 2 * kMillisecond;
  f.link.set_faults(faults);

  std::vector<std::uint32_t> arrival_order;
  f.sink.set_on_packet(
      [&](const Packet& p) { arrival_order.push_back(p.seq); });
  f.pour(2000, 1000, 100 * kMicrosecond);

  ASSERT_EQ(arrival_order.size(), 2000u);
  std::size_t inversions = 0;
  std::uint32_t highest = 0;
  for (std::uint32_t s : arrival_order) {
    if (s < highest) ++inversions;
    else highest = s;
  }
  EXPECT_GT(inversions, 100u);
  EXPECT_GT(f.link.stats().packets_reordered, 100u);
  // Reordering delays delivery but never loses or duplicates.
  EXPECT_EQ(f.link.stats().packets_out, 2000u);
}

TEST(FaultConfig, ValidationAndRemoval) {
  LinkFixture f;
  LinkFaults bad;
  bad.gilbert.p_good_bad = 1.5;
  EXPECT_THROW(f.link.set_faults(bad), std::invalid_argument);
  bad = LinkFaults{};
  bad.duplicate_prob = -0.1;
  EXPECT_THROW(f.link.set_faults(bad), std::invalid_argument);
  bad = LinkFaults{};
  bad.reorder_prob = 0.5;
  bad.reorder_extra_max = 0;
  EXPECT_THROW(f.link.set_faults(bad), std::invalid_argument);

  LinkFaults on;
  on.duplicate_prob = 0.5;
  f.link.set_faults(on);
  EXPECT_NE(f.link.faults(), nullptr);
  f.link.set_faults(LinkFaults{});  // any()==false removes
  EXPECT_EQ(f.link.faults(), nullptr);
  f.pour(100, 1000, kMillisecond);
  EXPECT_EQ(f.link.stats().packets_duplicated, 0u);
}

// ------------------------------------------------- capacity dynamics ---

TEST(CapacityDynamics, ReplansInServicePacket) {
  // 1000 B at 8 Mb/s = 1 ms serialization.  Halving the capacity halfway
  // through must finish the remaining 4000 bits at 4 Mb/s: completion at
  // 0.5 ms + 1.0 ms = 1.5 ms, not 1.0 ms (old plan) or 2.0 ms (restart).
  LinkFixture f(8e6);
  SimTime arrival = 0;
  f.simu.at(0, [&] {
    Packet pkt;
    pkt.id = f.simu.next_packet_id();
    pkt.size_bytes = 1000;
    f.link.handle(pkt);
  });
  f.simu.at(kMillisecond / 2, [&] { f.link.set_capacity(4e6); });
  f.sink.set_on_packet([&](const Packet&) { arrival = f.simu.now(); });
  f.simu.run_until_idle();

  EXPECT_EQ(arrival, kMillisecond + kMillisecond / 2);
  EXPECT_EQ(f.link.stats().packets_out, 1u);  // stale event must not double-fire
  EXPECT_EQ(f.link.stats().capacity_changes, 1u);
  // The busy interval was amended to the true completion time.
  EXPECT_EQ(f.link.meter().busy_time(0, 10 * kMillisecond),
            kMillisecond + kMillisecond / 2);
}

TEST(CapacityDynamics, GroundTruthIntegratesPiecewiseCapacity) {
  // Idle link, capacity 10 -> 40 Mb/s at t = 1 s.  Over [0, 4 s) the
  // avail-bw is (1*10 + 3*40)/4 = 32.5 Mb/s — the piecewise integral,
  // not either endpoint.
  LinkFixture f(10e6);
  f.simu.at(kSecond, [&] { f.link.set_capacity(40e6); });
  f.simu.run_until(4 * kSecond);

  const UtilizationMeter& m = f.link.meter();
  EXPECT_EQ(m.capacity_step_count(), 1u);
  EXPECT_DOUBLE_EQ(m.capacity_at(0), 10e6);
  EXPECT_DOUBLE_EQ(m.capacity_at(2 * kSecond), 40e6);
  EXPECT_DOUBLE_EQ(m.avail_bw(0, 4 * kSecond), 32.5e6);
  EXPECT_DOUBLE_EQ(m.cross_avail_bw(0, 4 * kSecond), 32.5e6);
  // Windows entirely inside one segment read that segment's capacity.
  EXPECT_DOUBLE_EQ(m.avail_bw(0, kSecond), 10e6);
  EXPECT_DOUBLE_EQ(m.avail_bw(2 * kSecond, 3 * kSecond), 40e6);
  // The series path agrees with per-window queries.
  std::vector<double> series = m.avail_bw_series(0, 4 * kSecond, kSecond);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series[0], 10e6);
  EXPECT_DOUBLE_EQ(series[1], 40e6);
}

TEST(CapacityDynamics, RepeatedChangesStayConsistent) {
  // A saturating CBR flow across several capacity changes: conservation
  // (in = out + queued + dropped) and meter sanity must survive every
  // re-plan, including back-to-back changes mid-transmission.
  Simulator simu;
  Path path(simu, {LinkFixture::make_cfg(20e6, 0)});
  CountingSink sink;
  path.set_receiver(&sink);
  traffic::CbrGenerator cbr(simu, path, 0, /*one_hop=*/false, /*flow_id=*/1,
                            stats::Rng(7), 18e6, 1000);
  cbr.start(0, 10 * kSecond);

  FaultInjector inj(simu);
  inj.set_capacity_at(path.link(0), 2 * kSecond, 5e6);
  inj.set_capacity_at(path.link(0), 2 * kSecond + 100 * kMicrosecond, 12e6);
  inj.flap(path.link(0), 4 * kSecond, kSecond, 1e6);
  EXPECT_EQ(inj.scheduled_changes(), 4u);

  simu.run_until(12 * kSecond);
  simu.run_until_idle();

  const LinkStats& st = path.link(0).stats();
  EXPECT_EQ(st.capacity_changes, 4u);
  EXPECT_DOUBLE_EQ(path.link(0).capacity_bps(), 20e6);  // flap recovered
  EXPECT_EQ(st.packets_in, st.packets_out + st.packets_dropped);
  // The meter never saw an overlapping or negative interval (it throws
  // otherwise), and utilization stays a valid fraction.
  double u = path.link(0).meter().utilization(0, simu.now());
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(CapacityDynamics, Validation) {
  LinkFixture f;
  EXPECT_THROW(f.link.set_capacity(0.0), std::invalid_argument);
  EXPECT_THROW(f.link.set_capacity(-5e6), std::invalid_argument);
  FaultInjector inj(f.simu);
  EXPECT_THROW(inj.set_capacity_at(f.link, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(inj.flap(f.link, 0, 0, 1e6), std::invalid_argument);
  f.simu.run_until(kSecond);
  EXPECT_THROW(inj.set_capacity_at(f.link, 0, 1e6), std::invalid_argument);
}

// ------------------------------------------- fluid/fault exclusivity ---

TEST(FaultFluidGuards, EveryCombinationRejected) {
  LinkFaults faults;
  faults.gilbert.p_good_bad = 0.01;
  faults.gilbert.p_bad_good = 0.05;

  {  // faults installed first -> enable_fluid rejected
    LinkFixture f;
    f.link.set_faults(faults);
    EXPECT_THROW(f.link.enable_fluid(), std::logic_error);
  }
  {  // capacity change applied first -> enable_fluid rejected
    LinkFixture f;
    f.link.set_capacity(5e6);
    EXPECT_THROW(f.link.enable_fluid(), std::logic_error);
  }
  {  // capacity change merely SCHEDULED first -> enable_fluid rejected
    LinkFixture f;
    FaultInjector inj(f.simu);
    inj.set_capacity_at(f.link, 10 * kSecond, 5e6);
    EXPECT_THROW(f.link.enable_fluid(), std::logic_error);
  }
  {  // fluid enabled first -> every fault entry point rejected
    LinkFixture f;
    f.link.enable_fluid();
    EXPECT_THROW(f.link.set_faults(faults), std::logic_error);
    EXPECT_THROW(f.link.set_capacity(5e6), std::logic_error);
    EXPECT_THROW(f.link.expect_capacity_dynamics(), std::logic_error);
    FaultInjector inj(f.simu);
    EXPECT_THROW(inj.set_capacity_at(f.link, 10 * kSecond, 5e6),
                 std::logic_error);
    EXPECT_THROW(inj.set_link_faults(f.link, faults), std::logic_error);
  }
  {  // a hybrid scenario's tight link rejects fault installation
    core::SingleHopConfig cfg;
    cfg.mode = SimMode::kHybrid;
    core::Scenario sc = core::Scenario::single_hop(cfg);
    EXPECT_THROW(sc.path().link(0).set_faults(faults), std::logic_error);
    FaultInjector inj(sc.simulator());
    EXPECT_THROW(
        inj.flap(sc.path().link(0), sc.simulator().now() + kSecond, kSecond, 1e6),
        std::logic_error);
  }
}

// --------------------------------------- per-stream probe accounting ---

TEST(ProbeAccounting, StreamResultCountsImpairments) {
  core::SingleHopConfig cfg;
  cfg.cross_rate_bps = 5e6;  // lightly loaded: impairments dominate
  core::Scenario sc = core::Scenario::single_hop(cfg);
  LinkFaults faults;
  faults.duplicate_prob = 0.1;
  faults.reorder_prob = 0.2;
  faults.reorder_extra_max = 2 * kMillisecond;
  faults.gilbert.p_good_bad = 0.02;
  faults.gilbert.p_bad_good = 0.2;
  sc.path().link(0).set_faults(faults);

  probe::StreamSpec spec = probe::StreamSpec::periodic(10e6, 1000, 500);
  probe::StreamResult res = sc.session().send_stream_now(spec);

  EXPECT_GT(res.duplicate_count, 0u);
  EXPECT_GT(res.reordered_count, 0u);
  EXPECT_GT(res.lost_count(), 0u);
  EXPECT_TRUE(res.impaired());
  EXPECT_EQ(res.received_count() + res.lost_count(), res.packets.size());
  EXPECT_GT(res.loss_fraction(), 0.0);
  EXPECT_LT(res.loss_fraction(), 1.0);
}

TEST(ProbeAccounting, DegenerateStreamShapesAreSafe) {
  // The two shapes decimated streams collapse to — everything lost, and
  // exactly one survivor — must flow through every rate/OWD helper
  // without a division by zero or an out-of-range access.
  probe::StreamResult all_lost;
  for (std::uint32_t i = 0; i < 10; ++i) {
    probe::ProbeRecord r;
    r.seq = i;
    r.size_bytes = 1000;
    r.sent = static_cast<SimTime>(i) * kMillisecond;
    r.lost = true;
    all_lost.packets.push_back(r);
  }
  EXPECT_EQ(all_lost.lost_count(), 10u);
  EXPECT_EQ(all_lost.received_count(), 0u);
  EXPECT_DOUBLE_EQ(all_lost.loss_fraction(), 1.0);
  EXPECT_TRUE(all_lost.impaired());
  EXPECT_DOUBLE_EQ(all_lost.output_rate_bps(), 0.0);
  EXPECT_DOUBLE_EQ(all_lost.rate_ratio(), 0.0);
  EXPECT_TRUE(all_lost.owds_seconds().empty());
  EXPECT_TRUE(all_lost.relative_owds_ms().empty());

  probe::StreamResult one = all_lost;  // exactly one survivor
  one.packets[3].lost = false;
  one.packets[3].received = one.packets[3].sent + 2 * kMillisecond;
  EXPECT_EQ(one.received_count(), 1u);
  EXPECT_GT(one.input_rate_bps(), 0.0);
  EXPECT_DOUBLE_EQ(one.output_rate_bps(), 0.0);  // < 2 arrivals: undefined
  EXPECT_DOUBLE_EQ(one.rate_ratio(), 0.0);
  ASSERT_EQ(one.owds_seconds().size(), 1u);
  ASSERT_EQ(one.relative_owds_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(one.relative_owds_ms()[0], 0.0);
  EXPECT_TRUE(one.impaired());
  EXPECT_FALSE(one.complete());
}

TEST(ProbeAccounting, CleanStreamIsUnimpaired) {
  core::SingleHopConfig cfg;
  cfg.cross_rate_bps = 5e6;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  probe::StreamSpec spec = probe::StreamSpec::periodic(10e6, 1000, 200);
  probe::StreamResult res = sc.session().send_stream_now(spec);
  EXPECT_EQ(res.duplicate_count, 0u);
  EXPECT_EQ(res.reordered_count, 0u);
  EXPECT_FALSE(res.impaired());
  EXPECT_DOUBLE_EQ(res.loss_fraction(), 0.0);
}

// ------------------------------------------------- estimator limits ---

TEST(EstimateType, InvalidPointIsNaNAndAbortCarriesReason) {
  est::Estimate inv = est::Estimate::invalid("why");
  EXPECT_FALSE(inv.valid);
  EXPECT_TRUE(std::isnan(inv.point_bps()));
  EXPECT_EQ(inv.abort, est::AbortReason::kNone);

  est::Estimate ab =
      est::Estimate::aborted(est::AbortReason::kDeadline, "too slow");
  EXPECT_FALSE(ab.valid);
  EXPECT_TRUE(std::isnan(ab.point_bps()));
  EXPECT_EQ(ab.abort, est::AbortReason::kDeadline);
  EXPECT_EQ(est::abort_reason_name(ab.abort), "deadline");

  est::Estimate ok = est::Estimate::point(10e6);
  EXPECT_DOUBLE_EQ(ok.point_bps(), 10e6);
}

// Blackout faults: the Gilbert-Elliott chain jumps to (and stays in) the
// bad state on the first packet and drops everything.
sim::LinkFaults blackout() {
  sim::LinkFaults f;
  f.gilbert.p_good_bad = 1.0;
  f.gilbert.p_bad_good = 0.0;
  f.gilbert.loss_bad = 1.0;
  return f;
}

TEST(EstimatorLimits, EveryToolAbortsStructurallyUnderBlackout) {
  // All probes lost: no tool can measure, and without limits several
  // published techniques would grind through their full search.  With a
  // probe budget every registry tool must return promptly with
  // valid == false and a structured reason — never crash or hang (the
  // ctest-level timeout backstops the "hang" half).
  for (const std::string& tool : core::available_tools()) {
    core::SingleHopConfig cfg;
    cfg.cross_rate_bps = 10e6;
    core::Scenario sc = core::Scenario::single_hop(cfg);
    sc.path().link(0).set_faults(blackout());
    sc.session().set_drain_timeout(200 * kMillisecond);  // all-lost streams

    core::ToolOptions opt;
    opt.tight_capacity_bps = cfg.capacity_bps;
    opt.max_rate_bps = cfg.capacity_bps;
    opt.limits.max_probe_packets = 2000;
    opt.limits.deadline = 30 * kSecond;
    auto est = core::make_estimator(tool, opt, sc.rng());

    est::Estimate e = est->estimate(sc.session());
    EXPECT_FALSE(e.valid) << tool;
    EXPECT_NE(e.abort, est::AbortReason::kNone) << tool << ": " << e.detail;
    EXPECT_TRUE(std::isnan(e.point_bps())) << tool;
  }
}

TEST(EstimatorLimits, DegenerateStreamsNeverCrashTools) {
  // Near-blackout (a lone survivor now and then), heavy duplication, and
  // heavy reordering: every tool must terminate with either a valid
  // estimate or a structured abort — and never throw.
  std::vector<sim::LinkFaults> regimes;
  {
    sim::LinkFaults f = blackout();
    f.gilbert.loss_bad = 0.995;  // one survivor per ~200 packets
    regimes.push_back(f);
  }
  {
    sim::LinkFaults f;
    f.duplicate_prob = 0.5;
    regimes.push_back(f);
  }
  {
    sim::LinkFaults f;
    f.reorder_prob = 0.8;
    f.reorder_extra_max = 5 * kMillisecond;
    regimes.push_back(f);
  }

  for (std::size_t r = 0; r < regimes.size(); ++r) {
    for (const std::string& tool : core::available_tools()) {
      core::SingleHopConfig cfg;
      cfg.cross_rate_bps = 10e6;
      cfg.seed = 100 + r;
      core::Scenario sc = core::Scenario::single_hop(cfg);
      sc.path().link(0).set_faults(regimes[r]);
      sc.session().set_drain_timeout(200 * kMillisecond);

      core::ToolOptions opt;
      opt.tight_capacity_bps = cfg.capacity_bps;
      opt.max_rate_bps = cfg.capacity_bps;
      opt.limits.max_probe_packets = 4000;
      opt.limits.deadline = 30 * kSecond;
      auto est = core::make_estimator(tool, opt, sc.rng());

      est::Estimate e;
      ASSERT_NO_THROW(e = est->estimate(sc.session()))
          << tool << " regime " << r;
      if (!e.valid) {
        EXPECT_TRUE(e.abort != est::AbortReason::kNone || !e.detail.empty())
            << tool << " regime " << r;
      }
    }
  }
}

TEST(EstimatorLimits, LimitsOffPreservesConvergence) {
  // Defaults (no limits) on a clean path: pathload still converges to a
  // valid range, i.e. the guard plumbing changed nothing when unused.
  core::SingleHopConfig cfg;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  core::ToolOptions opt;
  opt.max_rate_bps = cfg.capacity_bps;
  auto est = core::make_estimator("pathload", opt, sc.rng());
  ASSERT_FALSE(est->limits().any());
  est::Estimate e = est->estimate(sc.session());
  EXPECT_TRUE(e.valid) << e.detail;
  EXPECT_EQ(e.abort, est::AbortReason::kNone);
}

// --------------------------------------------- fault-tolerant runner ---

TEST(BatchCells, ThrowingCellYieldsErrorRecordOthersBitIdentical) {
  runner::BatchRunner pool(4);
  const std::uint64_t base = 99;
  // Reference: the plain seeded map over the non-throwing computation.
  auto ref = pool.map_seeded(16, base, [](std::size_t i, std::uint64_t seed) {
    return static_cast<double>(seed % 1000) + static_cast<double>(i);
  });

  auto cells = pool.map_cells_seeded(
      16, base,
      [](std::size_t i, std::uint64_t seed) -> double {
        if (i == 5) throw std::runtime_error("cell 5 exploded");
        return static_cast<double>(seed % 1000) + static_cast<double>(i);
      });

  ASSERT_EQ(cells.size(), 16u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 5) {
      EXPECT_FALSE(cells[i].ok);
      EXPECT_EQ(cells[i].error, "cell 5 exploded");
      EXPECT_EQ(cells[i].attempts, 1u);
    } else {
      EXPECT_TRUE(cells[i].ok);
      EXPECT_EQ(cells[i].attempts, 1u);
      EXPECT_DOUBLE_EQ(cells[i].value, ref[i]);  // bit-identical survivors
    }
  }
}

TEST(BatchCells, RetryUsesFreshDeterministicSeed) {
  runner::BatchRunner pool(2);
  const std::uint64_t base = 7;
  runner::RetryPolicy retry;
  retry.max_retries = 2;

  // Cell 3 fails on its first-attempt seed, succeeds on any other.
  auto cells = pool.map_cells_seeded(
      8, base,
      [&](std::size_t i, std::uint64_t seed) -> std::uint64_t {
        if (i == 3 && seed == runner::derive_seed(base, 3))
          throw std::runtime_error("first attempt fails");
        return seed;
      },
      retry);

  ASSERT_TRUE(cells[3].ok);
  EXPECT_EQ(cells[3].attempts, 2u);
  EXPECT_EQ(cells[3].value,
            runner::derive_seed(runner::derive_seed(base, 3), 1));
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(cells[i].ok);
    EXPECT_EQ(cells[i].attempts, 1u);
    EXPECT_EQ(cells[i].value, runner::derive_seed(base, i));  // attempt 0
  }
}

TEST(BatchCells, ExhaustedRetriesReportLastError) {
  runner::BatchRunner pool(1);  // serial path must catch too
  runner::RetryPolicy retry;
  retry.max_retries = 3;
  auto cells = pool.map_cells(
      4,
      [](std::size_t i, std::size_t attempt) -> int {
        if (i == 2) throw std::runtime_error("always fails, attempt " +
                                             std::to_string(attempt));
        return static_cast<int>(i);
      },
      retry);
  EXPECT_FALSE(cells[2].ok);
  EXPECT_EQ(cells[2].attempts, 4u);
  EXPECT_EQ(cells[2].error, "always fails, attempt 3");
  EXPECT_TRUE(cells[3].ok);
  EXPECT_EQ(cells[3].value, 3);
}

}  // namespace
