// Randomized robustness stress: every registry tool measuring a path
// whose capacity flaps and whose loss is bursty, over responsive (TCP)
// cross traffic, across a seeded sweep of impairment parameters.  The
// contract under test is the PR's headline guarantee: with hard
// EstimatorLimits installed, no tool crashes, hangs, or throws — each
// cell of the sweep terminates with a valid estimate or a structured
// abort, and no exception escapes BatchRunner::map_cells.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "est/estimator.hpp"
#include "probe/session.hpp"
#include "runner/batch.hpp"
#include "sim/fault.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/rng.hpp"
#include "tcp/flows.hpp"
#include "tcp/tcp.hpp"

namespace {

using namespace abw;
using sim::kMillisecond;
using sim::kSecond;

constexpr double kCapacity = 50e6;

struct CellOutcome {
  bool valid = false;
  est::AbortReason abort = est::AbortReason::kNone;
  bool point_is_nan_when_invalid = true;
  std::uint64_t tcp_acked_bytes = 0;
};

// One stress cell: a single-hop path carrying persistent + short TCP
// cross traffic, Gilbert-Elliott loss and two capacity flaps derived
// from the cell seed, measured end-to-end by `tool` under hard limits.
CellOutcome run_cell(const std::string& tool, std::uint64_t seed) {
  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = kCapacity;
  lc.propagation_delay = 2 * kMillisecond;
  lc.queue_limit_bytes = 256 * 1500;
  sim::Path path(simu, {lc});
  probe::ProbeSession session(simu, path);
  session.set_drain_timeout(500 * kMillisecond);

  tcp::TcpReceiverHub hub;
  session.demux().register_handler(sim::PacketType::kTcpData, &hub);

  stats::Rng rng(seed);

  // Responsive cross traffic: a few window-limited persistent transfers
  // plus an aggregate of short flows.
  tcp::TcpConfig tc;
  tc.receiver_window = 24;
  tcp::PersistentFlowSet persistent(simu, path, hub, /*first_flow_id=*/1,
                                    /*count=*/4, tc);
  persistent.start(0, kSecond, rng);
  tcp::ShortFlowConfig sfc;
  sfc.flow_arrival_rate = 10.0;
  tcp::ShortFlowGenerator shorts(simu, path, hub, /*first_flow_id=*/100, sfc,
                                 rng.fork());
  shorts.start(0, 120 * kSecond);

  // Seed-derived impairments: 5-20% stationary bursty loss and two 10x
  // flaps that land inside the measurement window.
  sim::LinkFaults faults;
  faults.gilbert.p_good_bad = 0.002 + 0.002 * static_cast<double>(seed % 5);
  faults.gilbert.p_bad_good = 0.04;
  faults.seed = seed;
  path.link(0).set_faults(faults);

  sim::FaultInjector inj(simu);
  sim::SimTime flap1 = 3 * kSecond + static_cast<sim::SimTime>(seed % 7) *
                                         (kSecond / 2);
  inj.flap(path.link(0), flap1, 2 * kSecond, kCapacity / 10.0);
  inj.flap(path.link(0), flap1 + 8 * kSecond, kSecond, kCapacity / 5.0);

  simu.run_until(2 * kSecond);  // warmup: let TCP ramp up

  core::ToolOptions opt;
  opt.tight_capacity_bps = kCapacity;
  opt.min_rate_bps = 1e6;
  opt.max_rate_bps = kCapacity;
  opt.limits.max_probe_packets = 20000;
  opt.limits.deadline = 45 * kSecond;
  auto est = core::make_estimator(tool, opt, rng);

  est::Estimate e = est->estimate(session);

  CellOutcome out;
  out.valid = e.valid;
  out.abort = e.abort;
  if (!e.valid) out.point_is_nan_when_invalid = std::isnan(e.point_bps());
  // Aggregate TCP progress: individual flows may stall completely under a
  // long bad-state burst (each loss draw advances the chain per *packet*,
  // so a stalled flow's sparse retransmits keep meeting the bad state) —
  // but the population as a whole must have moved payload.
  for (std::size_t i = 0; i < persistent.size(); ++i)
    out.tcp_acked_bytes += persistent.flow(i).acked_bytes();
  out.tcp_acked_bytes += shorts.total_acked_bytes();
  return out;
}

TEST(FaultStress, SweepTerminatesWithoutEscapedExceptions) {
  const std::vector<std::string> tools = core::available_tools();
  const std::size_t seeds_per_tool = 3;
  const std::size_t cells = tools.size() * seeds_per_tool;

  runner::BatchRunner pool(4);
  auto results = pool.map_cells_seeded(
      cells, /*base_seed=*/20260806,
      [&](std::size_t i, std::uint64_t seed) {
        return run_cell(tools[i / seeds_per_tool], seed);
      });

  ASSERT_EQ(results.size(), cells);
  std::size_t valid = 0, aborted = 0, plain_invalid = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string& tool = tools[i / seeds_per_tool];
    // The headline guarantee: the cell completed — nothing threw, nothing
    // hung (the ctest timeout backstops the latter).
    ASSERT_TRUE(results[i].ok) << tool << " cell " << i << " threw: "
                               << results[i].error;
    const CellOutcome& o = results[i].value;
    EXPECT_TRUE(o.point_is_nan_when_invalid) << tool << " cell " << i;
    if (o.valid)
      ++valid;
    else if (o.abort != est::AbortReason::kNone)
      ++aborted;
    else
      ++plain_invalid;
    // The cross traffic was real: TCP moved payload through the faulty
    // link in every cell.
    EXPECT_GT(o.tcp_acked_bytes, 0u) << tool << " cell " << i;
  }
  // Every cell is accounted for as one of the three graceful outcomes,
  // and the sweep did not degenerate to all-abort: graceful degradation,
  // not blanket refusal.
  EXPECT_EQ(valid + aborted + plain_invalid, cells);
  EXPECT_GT(valid, 0u);
}

}  // namespace
