// Tests for the parallel batch experiment runner: ThreadPool execution,
// deterministic seed derivation, submission-order aggregation, exception
// transport, and the headline guarantee — BatchRunner output is
// bit-identical to the serial run for every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "runner/thread_pool.hpp"

namespace {

using namespace abw;
using runner::BatchRunner;
using runner::ThreadPool;

// -------------------------------------------------------- thread pool ---

TEST(ThreadPool, RunsEveryJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilSlowJobsFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 6; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 6);  // no sleeping job may be outstanding
}

TEST(ThreadPool, ZeroThreadRequestStillWorks) {
  ThreadPool pool(0);  // clamped to 1 worker
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> done{0};
  pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i)
      pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor must run the backlog, not drop it
  EXPECT_EQ(done.load(), 20);
}

// ---------------------------------------------------- seed derivation ---

TEST(SeedDerivation, SplitmixMatchesReferenceVector) {
  // First output of the canonical splitmix64 stream seeded with 0.
  EXPECT_EQ(runner::splitmix64(0), 0xe220a8397b1dcdafULL);
}

TEST(SeedDerivation, DeterministicDistinctAndBaseSensitive) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t s = runner::derive_seed(42, i);
    EXPECT_EQ(s, runner::derive_seed(42, i));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across task indices
  EXPECT_NE(runner::derive_seed(1, 7), runner::derive_seed(2, 7));
  // Low-entropy bases must still decorrelate consecutive tasks.
  EXPECT_NE(runner::derive_seed(0, 0) ^ runner::derive_seed(0, 1),
            runner::derive_seed(1, 0) ^ runner::derive_seed(1, 1));
}

// -------------------------------------------------------- batch runner ---

TEST(BatchRunnerTest, ResultsArriveInSubmissionOrder) {
  BatchRunner batch(8);
  // Stagger work so late-submitted tasks finish first.
  auto out = batch.map(32, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((32 - i) * 50));
    return i * i;
  });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunnerTest, EmptyAndSingleBatches) {
  BatchRunner batch(4);
  EXPECT_TRUE(batch.map(0, [](std::size_t i) { return i; }).empty());
  auto one = batch.map(1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(BatchRunnerTest, JobsZeroMeansDefault) {
  ::setenv("ABW_JOBS", "3", 1);
  EXPECT_EQ(BatchRunner(0).jobs(), 3u);
  EXPECT_EQ(runner::default_jobs(), 3u);
  ::unsetenv("ABW_JOBS");
  EXPECT_GE(runner::default_jobs(), 1u);
  EXPECT_EQ(BatchRunner(5).jobs(), 5u);
}

TEST(BatchRunnerTest, MalformedAbwJobsThrows) {
  ::setenv("ABW_JOBS", "banana", 1);
  EXPECT_THROW(runner::default_jobs(), std::invalid_argument);
  ::setenv("ABW_JOBS", "0", 1);
  EXPECT_THROW(runner::default_jobs(), std::invalid_argument);
  ::unsetenv("ABW_JOBS");
}

TEST(BatchRunnerTest, ParseJobsFlag) {
  const char* argv1[] = {"bench", "--jobs", "6"};
  EXPECT_EQ(runner::parse_jobs_flag(3, const_cast<char**>(argv1), 2), 6u);
  const char* argv2[] = {"bench", "--jobs=9"};
  EXPECT_EQ(runner::parse_jobs_flag(2, const_cast<char**>(argv2), 2), 9u);
  const char* argv3[] = {"bench"};
  EXPECT_EQ(runner::parse_jobs_flag(1, const_cast<char**>(argv3), 2), 2u);
  const char* argv4[] = {"bench", "--jobs"};
  EXPECT_THROW(runner::parse_jobs_flag(2, const_cast<char**>(argv4), 2),
               std::invalid_argument);
  const char* argv5[] = {"bench", "-j", "nope"};
  EXPECT_THROW(runner::parse_jobs_flag(3, const_cast<char**>(argv5), 2),
               std::invalid_argument);
}

TEST(BatchRunnerTest, TaskExceptionPropagatesLowestIndexFirst) {
  BatchRunner batch(4);
  try {
    batch.map(16, [](std::size_t i) -> int {
      if (i == 11) throw std::runtime_error("task 11 failed");
      if (i == 3) throw std::runtime_error("task 3 failed");
      return 0;
    });
    FAIL() << "expected a task exception";
  } catch (const std::runtime_error& e) {
    // The serial run would have hit task 3 first; parallel must agree.
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
}

// ---------------------------------------------- cross-thread determinism ---

// The tentpole guarantee: a measure_ratio_curve_fresh sweep aggregated by
// the BatchRunner is BYTE-identical with 1, 2, and 8 threads.
TEST(BatchDeterminism, RatioCurveFreshIsByteIdenticalAcross1_2_8Threads) {
  core::RatioCurveConfig rc;
  rc.rates_bps = {10e6, 20e6, 30e6, 40e6};
  rc.streams_per_rate = 4;
  rc.packets_per_stream = 20;
  auto make = [](std::uint64_t seed) {
    core::SingleHopConfig cfg;
    cfg.seed = 900 + seed;
    return core::Scenario::single_hop(cfg);
  };

  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  auto c1 = core::measure_ratio_curve_fresh(make, rc, 1);
  for (std::size_t jobs : {2u, 8u}) {
    auto cj = core::measure_ratio_curve_fresh(make, rc, jobs);
    ASSERT_EQ(cj.size(), c1.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < c1.size(); ++i) {
      EXPECT_EQ(bits(cj[i].rate_bps), bits(c1[i].rate_bps)) << "jobs=" << jobs;
      EXPECT_EQ(bits(cj[i].mean_ratio), bits(c1[i].mean_ratio))
          << "jobs=" << jobs << " point " << i;
      EXPECT_EQ(bits(cj[i].std_ratio), bits(c1[i].std_ratio))
          << "jobs=" << jobs << " point " << i;
      EXPECT_EQ(cj[i].streams, c1[i].streams) << "jobs=" << jobs;
    }
  }
}

TEST(BatchDeterminism, DirectSampleReplicationsAreByteIdenticalAcrossThreads) {
  auto make = [](std::uint64_t seed) {
    core::SingleHopConfig cfg;
    cfg.seed = seed;
    return core::Scenario::single_hop(cfg);
  };
  auto run = [&](std::size_t jobs) {
    return core::collect_direct_samples_batch(
        make, 50e6, 40e6, 20 * sim::kMillisecond, 1500,
        /*count_per_replication=*/3, 10 * sim::kMillisecond,
        /*replications=*/4, /*base_seed=*/7, jobs);
  };
  auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  auto r1 = run(1);
  ASSERT_EQ(r1.size(), 4u);
  for (std::size_t jobs : {2u, 8u}) {
    auto rj = run(jobs);
    ASSERT_EQ(rj.size(), r1.size());
    for (std::size_t r = 0; r < r1.size(); ++r) {
      ASSERT_EQ(rj[r].size(), r1[r].size()) << "jobs=" << jobs;
      for (std::size_t s = 0; s < r1[r].size(); ++s)
        EXPECT_EQ(bits(rj[r][s]), bits(r1[r][s]))
            << "jobs=" << jobs << " rep " << r << " sample " << s;
    }
  }
}

}  // namespace
