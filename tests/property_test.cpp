// Property-based and randomized-reference tests: invariants that must
// hold across swept parameters, checked against brute-force references or
// closed-form fluid predictions.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/monitor.hpp"
#include "core/scenario.hpp"
#include "est/pathload.hpp"
#include "est/spruce.hpp"
#include "probe/session.hpp"
#include "sim/scheduler.hpp"
#include "sim/util_meter.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "stats/trend.hpp"
#include "tcp/tcp.hpp"
#include "trace/availbw_process.hpp"
#include "traffic/cbr.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ---------------------------------------------------- scheduler fuzzing ---

TEST(Property, SchedulerPopsInGlobalTimeOrder) {
  stats::Rng rng(1);
  sim::Scheduler sched;
  for (int i = 0; i < 5000; ++i)
    sched.schedule(rng.uniform_int(0, 1000000), [] {});
  sim::SimTime last = -1;
  while (!sched.empty()) {
    auto ev = sched.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST(Property, SchedulerFifoAmongEqualTimes) {
  sim::Scheduler sched;
  stats::Rng rng(2);
  // Interleave two timestamps; within each, insertion order must hold.
  for (int i = 0; i < 200; ++i) {
    sim::SimTime t = rng.bernoulli(0.5) ? 10 : 20;
    sched.schedule(t, [] {});
  }
  std::vector<std::uint64_t> seq10, seq20;
  while (!sched.empty()) {
    auto ev = sched.pop();
    (ev.time == 10 ? seq10 : seq20).push_back(ev.seq);
  }
  EXPECT_TRUE(std::is_sorted(seq10.begin(), seq10.end()));
  EXPECT_TRUE(std::is_sorted(seq20.begin(), seq20.end()));
  EXPECT_EQ(seq10.size() + seq20.size(), 200u);
}

// ------------------------------------------ meter vs brute-force checks ---

TEST(Property, MeterMatchesBruteForceOnRandomPattern) {
  stats::Rng rng(3);
  sim::UtilizationMeter meter(10e6);
  struct Iv {
    sim::SimTime a, b;
    bool meas;
  };
  std::vector<Iv> ivs;
  sim::SimTime t = 0;
  for (int i = 0; i < 400; ++i) {
    t += rng.uniform_int(1, 50);          // idle gap
    sim::SimTime len = rng.uniform_int(1, 80);
    bool meas = rng.bernoulli(0.3);
    meter.add_busy(t, t + len, meas);
    ivs.push_back({t, t + len, meas});
    t += len;
  }
  auto brute = [&](sim::SimTime a, sim::SimTime b, bool only_meas) {
    sim::SimTime sum = 0;
    for (const auto& iv : ivs) {
      if (only_meas && !iv.meas) continue;
      sim::SimTime lo = std::max(a, iv.a), hi = std::min(b, iv.b);
      if (hi > lo) sum += hi - lo;
    }
    return sum;
  };
  for (int q = 0; q < 300; ++q) {
    sim::SimTime a = rng.uniform_int(0, t);
    sim::SimTime b = a + rng.uniform_int(1, t / 3);
    EXPECT_EQ(meter.busy_time(a, b), brute(a, b, false)) << a << " " << b;
    EXPECT_EQ(meter.measurement_busy_time(a, b), brute(a, b, true))
        << a << " " << b;
  }
}

TEST(Property, AvailBwProcessBytesMatchBruteForce) {
  stats::Rng rng(4);
  trace::PacketTrace tr(50e6);
  sim::SimTime t = 0;
  std::vector<std::pair<sim::SimTime, std::uint32_t>> recs;
  for (int i = 0; i < 2000; ++i) {
    t += rng.uniform_int(0, 5000);
    auto size = static_cast<std::uint32_t>(rng.uniform_int(40, 1500));
    tr.add(t, size);
    recs.emplace_back(t, size);
  }
  trace::AvailBwProcess proc(tr);
  for (int q = 0; q < 200; ++q) {
    sim::SimTime a = rng.uniform_int(0, t);
    sim::SimTime b = a + rng.uniform_int(1, t / 4);
    std::uint64_t brute = 0;
    for (const auto& [at, size] : recs)
      if (at >= a && at < b) brute += size;
    EXPECT_EQ(proc.bytes_in(a, b), brute);
  }
}

// ------------------------------------- multi-hop fluid cascade (Eq. 8) ---

// Through a cascade of links each carrying one-hop CBR cross traffic of
// rate Rc, the fluid model applies hop by hop: the stream leaves hop i at
// R_out = R_in * C / (C + R_in - A) when R_in > A, else unchanged.
class FluidCascade
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(FluidCascade, OutputRateFollowsPerHopEquationEight) {
  auto [hops, ri] = GetParam();
  constexpr double c = 50e6, rc = 25e6, a = c - rc;

  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = c;
  lc.queue_limit_bytes = 64 << 20;
  sim::Path path(simu, std::vector<sim::LinkConfig>(hops, lc));
  probe::ProbeSession session(simu, path);
  std::vector<std::unique_ptr<traffic::CbrGenerator>> gens;
  for (std::size_t h = 0; h < hops; ++h) {
    gens.push_back(std::make_unique<traffic::CbrGenerator>(
        simu, path, h, /*one_hop=*/true, static_cast<std::uint32_t>(h),
        stats::Rng(50 + h), rc, 1500));
    gens.back()->start(0, 120 * kSecond);
  }
  simu.run_until(kSecond);

  auto res = session.send_stream_now(probe::StreamSpec::periodic(ri, 1500, 300));
  ASSERT_TRUE(res.complete());

  double predicted = ri;
  for (std::size_t h = 0; h < hops; ++h)
    if (predicted > a) predicted = predicted * c / (c + predicted - a);

  EXPECT_NEAR(res.output_rate_bps(), predicted, predicted * 0.03)
      << "hops=" << hops << " Ri=" << ri;
}

INSTANTIATE_TEST_SUITE_P(
    HopsAndRates, FluidCascade,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(30e6, 40e6, 45e6)));

// -------------------------------------------------- spruce sweep (CBR) ---

class SpruceSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpruceSweep, MeanSampleTracksAvailBwOnCbr) {
  double cross = GetParam();
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_rate_bps = cross;
  cfg.seed = 99;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  spc.pair_count = 200;
  est::Spruce spruce(spc, sc.rng().fork());
  auto e = spruce.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  double a = cfg.capacity_bps - cross;
  EXPECT_NEAR(e.point_bps(), a, std::max(3e6, a * 0.12)) << "cross=" << cross;
}

INSTANTIATE_TEST_SUITE_P(CrossRates, SpruceSweep,
                         ::testing::Values(10e6, 20e6, 30e6, 40e6));

// --------------------------------------------------- TCP vs loss rate ---

TEST(Property, TcpThroughputMonotoneInRandomLoss) {
  auto run = [](double loss) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 40e6;
    cfg.propagation_delay = 10 * kMillisecond;
    cfg.random_loss_prob = loss;
    sim::Path path(simu, {cfg});
    sim::TypeDemux demux;
    tcp::TcpReceiverHub hub;
    demux.register_handler(sim::PacketType::kTcpData, &hub);
    path.set_receiver(&demux);
    tcp::TcpConfig tc;
    tc.receiver_window = 256;
    tcp::TcpConnection conn(simu, path, hub, 1, tc);
    conn.start(0);
    simu.run_until(30 * kSecond);
    return conn.throughput_bps(simu.now());
  };
  double t0 = run(0.0), t1 = run(0.003), t2 = run(0.02);
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, 0.5e6);  // still makes progress at 2% loss
}

// ------------------------------------------------ estimator determinism ---

TEST(Property, IdenticalSeedsGiveIdenticalEstimates) {
  auto run = [] {
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kParetoOnOff;
    cfg.seed = 31337;
    auto sc = core::Scenario::single_hop(cfg);
    est::PathloadConfig pc;
    pc.min_rate_bps = 2e6;
    pc.max_rate_bps = 49e6;
    est::Pathload pl(pc);
    return pl.estimate(sc.session());
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.low_bps, b.low_bps);
  EXPECT_DOUBLE_EQ(a.high_bps, b.high_bps);
}

TEST(Property, DifferentSeedsGiveDifferentPacketTimings) {
  auto first_gap = [](std::uint64_t seed) {
    core::SingleHopConfig cfg;
    cfg.seed = seed;
    auto sc = core::Scenario::single_hop(cfg);
    return sc.path().link(0).stats().packets_in;
  };
  EXPECT_NE(first_gap(1), first_gap(2));  // warmup packet counts differ
}

// ------------------------------------------------ trend detection SNR ---

class TrendSnr : public ::testing::TestWithParam<double> {};

TEST_P(TrendSnr, DetectionImprovesWithSignalToNoise) {
  double slope_per_sample = GetParam();  // seconds per packet
  stats::Rng rng(7);
  int detected = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> owds;
    for (int i = 0; i < 120; ++i)
      owds.push_back(0.005 + slope_per_sample * i + 2e-4 * rng.normal());
    if (stats::combined_trend(owds) == stats::Trend::kIncreasing) ++detected;
  }
  double rate = static_cast<double>(detected) / kTrials;
  if (slope_per_sample >= 2e-5) {
    EXPECT_GT(rate, 0.9) << "slope=" << slope_per_sample;
  } else if (slope_per_sample <= 1e-7) {
    EXPECT_LT(rate, 0.1) << "slope=" << slope_per_sample;
  }
}

INSTANTIATE_TEST_SUITE_P(Slopes, TrendSnr,
                         ::testing::Values(0.0, 1e-7, 2e-5, 1e-4));

// ------------------------------------------------------------- monitor ---

TEST(Monitor, TracksConstantAvailBw) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kPoisson;
  cfg.seed = 17;
  auto sc = core::Scenario::single_hop(cfg);
  core::MonitorConfig mc;
  mc.min_rate_bps = 2e6;
  mc.max_rate_bps = 48e6;
  mc.pathload.streams_per_fleet = 4;
  mc.pathload.packets_per_stream = 60;
  core::AvailBwMonitor monitor(sc, mc);
  auto readings = monitor.run_until(15 * kSecond);
  ASSERT_GE(readings.size(), 8u);
  // After the first few readings the estimate stays near 25 Mb/s.
  for (std::size_t i = 4; i < readings.size(); ++i)
    EXPECT_NEAR(readings[i].estimate_bps, 25e6, 8e6) << "reading " << i;
}

TEST(Monitor, RespondsToAvailBwDrop) {
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = 50e6;
  auto sc = core::Scenario::custom(links, 21);
  traffic::CbrGenerator base(sc.simulator(), sc.path(), 0, false, 1,
                             stats::Rng(1), 15e6, 1500);
  base.start(0, 60 * kSecond);
  traffic::CbrGenerator surge(sc.simulator(), sc.path(), 0, false, 2,
                              stats::Rng(2), 20e6, 1500);
  surge.start(12 * kSecond, 60 * kSecond);
  sc.simulator().run_until(kSecond);

  core::MonitorConfig mc;
  mc.min_rate_bps = 2e6;
  mc.max_rate_bps = 48e6;
  mc.pathload.streams_per_fleet = 4;
  mc.pathload.packets_per_stream = 60;
  core::AvailBwMonitor monitor(sc, mc);
  monitor.run_until(25 * kSecond);

  // Last reading must be near the post-step avail-bw (15), the readings
  // before the step near 35.
  const auto& rs = monitor.readings();
  ASSERT_GE(rs.size(), 15u);
  double pre = 0, post = 0;
  int pre_n = 0, post_n = 0;
  for (const auto& r : rs) {
    if (r.at < 11 * kSecond && r.at > 4 * kSecond) {
      pre += r.estimate_bps;
      ++pre_n;
    }
    if (r.at > 20 * kSecond) {
      post += r.estimate_bps;
      ++post_n;
    }
  }
  ASSERT_GT(pre_n, 0);
  ASSERT_GT(post_n, 0);
  EXPECT_NEAR(pre / pre_n, 35e6, 8e6);
  EXPECT_NEAR(post / post_n, 15e6, 6e6);
}

TEST(Monitor, RejectsBadConfig) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  core::MonitorConfig bad;
  bad.probe_margin = 1.5;
  EXPECT_THROW(core::AvailBwMonitor(sc, bad), std::invalid_argument);
  bad = {};
  bad.max_rate_bps = bad.min_rate_bps;
  EXPECT_THROW(core::AvailBwMonitor(sc, bad), std::invalid_argument);
}

// ------------------------------------------- scenario loss passthrough ---

TEST(Property, ScenarioLossKnobReachesTheLink) {
  core::SingleHopConfig cfg;
  cfg.random_loss_prob = 0.05;
  cfg.seed = 5;
  auto sc = core::Scenario::single_hop(cfg);
  sc.simulator().run_until(10 * kSecond);
  const auto& st = sc.path().link(0).stats();
  EXPECT_GT(st.packets_lost, 0u);
  double rate = static_cast<double>(st.packets_lost) / st.packets_in;
  EXPECT_NEAR(rate, 0.05, 0.02);
}

}  // namespace
