// The transport-redesign suite (label: live).
//
//  * probe::ReceiverState — the ONE dedup/reorder accounting shared by
//    ProbeSession, MeshScenario, ParallelScenario, and the live daemon.
//  * SimTransport bit-identity: every tool run through the Transport
//    interface must produce byte-identical results (Estimate::to_json)
//    to the historical direct-ProbeSession path.
//  * The wire protocol (net/wire.hpp) round-trips.
//  * Live UDP loopback: capacity, spruce, and pathload end-to-end
//    against an in-process abwd daemon; an all-9-tool sweep asserting
//    valid-or-structured termination; daemon multiplexing of many
//    concurrent sessions with no cross-session bleed; admission
//    rejection beyond max_sessions; and the graceful kDeadline abort
//    when the peer goes silent.
//
// Every socket-touching test skips itself (GTEST_SKIP) when the
// environment cannot bind a loopback UDP socket.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "est/capacity.hpp"
#include "est/pathload.hpp"
#include "est/spruce.hpp"
#include "net/daemon.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "probe/receiver_state.hpp"
#include "probe/transport.hpp"

using namespace abw;

// ---------------------------------------------------------------------------
// ReceiverState: the shared accounting

namespace {

probe::StreamResult make_result(std::size_t n) {
  probe::StreamResult r;
  r.stream_id = 1;
  r.packets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.packets[i].seq = static_cast<std::uint32_t>(i);
    r.packets[i].lost = true;
  }
  return r;
}

}  // namespace

TEST(ReceiverState, InOrderDeliveryAcceptsAll) {
  probe::StreamResult r = make_result(5);
  probe::ReceiverState rs;
  for (std::uint32_t s = 0; s < 5; ++s) {
    probe::ProbeRecord* rec = rs.accept(r, s);
    ASSERT_NE(rec, nullptr);
    rec->received = 100 + s;
  }
  EXPECT_EQ(r.duplicate_count, 0u);
  EXPECT_EQ(r.reordered_count, 0u);
  EXPECT_TRUE(r.complete());
}

TEST(ReceiverState, DuplicatesCountedAndRejected) {
  probe::StreamResult r = make_result(3);
  probe::ReceiverState rs;
  ASSERT_NE(rs.accept(r, 1), nullptr);
  EXPECT_EQ(rs.accept(r, 1), nullptr);  // dup of a received seq
  EXPECT_EQ(rs.accept(r, 1), nullptr);
  EXPECT_EQ(r.duplicate_count, 2u);
  EXPECT_EQ(r.reordered_count, 0u);
}

TEST(ReceiverState, ReorderCountsFirstArrivalBehindHigherSeq) {
  probe::StreamResult r = make_result(4);
  probe::ReceiverState rs;
  ASSERT_NE(rs.accept(r, 0), nullptr);
  ASSERT_NE(rs.accept(r, 2), nullptr);  // 1 skipped
  ASSERT_NE(rs.accept(r, 1), nullptr);  // late: reordered
  ASSERT_NE(rs.accept(r, 3), nullptr);
  EXPECT_EQ(r.reordered_count, 1u);
  EXPECT_EQ(r.duplicate_count, 0u);
}

TEST(ReceiverState, OutOfRangeSeqIgnored) {
  probe::StreamResult r = make_result(2);
  probe::ReceiverState rs;
  EXPECT_EQ(rs.accept(r, 7), nullptr);
  EXPECT_EQ(r.duplicate_count, 0u);
  EXPECT_EQ(r.lost_count(), 2u);
}

// ---------------------------------------------------------------------------
// SimTransport bit-identity: Transport path == historical session path

namespace {

core::Scenario twin_scenario() {
  core::SingleHopConfig cfg;  // paper defaults: 50M capacity, 25M cross
  cfg.seed = 11;
  return core::Scenario::single_hop(cfg);
}

core::ToolOptions twin_options() {
  core::ToolOptions o;
  o.tight_capacity_bps = 50e6;
  o.min_rate_bps = 2e6;
  o.max_rate_bps = 49e6;
  return o;
}

}  // namespace

TEST(SimTransportIdentity, EveryToolBitIdenticalToSessionPath) {
  for (const std::string& name : core::available_tools()) {
    core::Scenario sc_session = twin_scenario();
    core::Scenario sc_transport = twin_scenario();
    stats::Rng rng_a(99), rng_b(99);
    auto tool_a = core::make_estimator(name, twin_options(), rng_a);
    auto tool_b = core::make_estimator(name, twin_options(), rng_b);

    // Historical path: the deprecated ProbeSession& overload.
    est::Estimate via_session = tool_a->estimate(sc_session.session());
    // Redesigned path: the Transport& interface.
    est::Estimate via_transport = tool_b->estimate(sc_transport.transport());

    EXPECT_EQ(via_session.to_json(), via_transport.to_json())
        << "tool " << name << " diverged between session and transport paths";
  }
}

TEST(SimTransportIdentity, CapacityEstimatorBitIdentical) {
  core::Scenario sc_a = twin_scenario();
  core::Scenario sc_b = twin_scenario();
  est::CapacityConfig cfg;
  cfg.pair_count = 60;
  est::CapacityEstimator cap_a(cfg, stats::Rng(7));
  est::CapacityEstimator cap_b(cfg, stats::Rng(7));
  double via_session = cap_a.estimate_capacity(sc_a.session());
  double via_transport = cap_b.estimate_capacity(sc_b.transport());
  EXPECT_EQ(via_session, via_transport);
}

TEST(SimTransport, ExposesSessionAndClock) {
  core::Scenario sc = twin_scenario();
  probe::SimTransport& t = sc.transport();
  EXPECT_EQ(t.kind(), "sim");
  EXPECT_EQ(t.sim_session(), &sc.session());
  sim::SimTime before = t.now();
  t.wait(5 * sim::kMillisecond);
  EXPECT_EQ(t.now(), before + 5 * sim::kMillisecond);
  EXPECT_EQ(&t, &sc.transport());  // stable accessor
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(Wire, HeaderRoundTrips) {
  net::WireHeader h;
  h.type = static_cast<std::uint8_t>(net::MsgType::kProbe);
  h.session_id = 0x1122334455667788ull;
  h.stream_id = 42;
  h.seq = 7;
  h.t_ns = 0xCAFEBABEDEADBEEFull;
  h.count = 300;
  h.aux = 1234;
  unsigned char buf[net::kHeaderSize];
  net::encode_header(h, buf);
  net::WireHeader d;
  ASSERT_TRUE(net::decode_header(buf, sizeof(buf), &d));
  EXPECT_EQ(d.type, h.type);
  EXPECT_EQ(d.session_id, h.session_id);
  EXPECT_EQ(d.stream_id, h.stream_id);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.t_ns, h.t_ns);
  EXPECT_EQ(d.count, h.count);
  EXPECT_EQ(d.aux, h.aux);
}

TEST(Wire, RejectsShortAndForeignDatagrams) {
  unsigned char buf[net::kHeaderSize] = {0};
  net::WireHeader d;
  EXPECT_FALSE(net::decode_header(buf, 10, &d));   // short
  EXPECT_FALSE(net::decode_header(buf, sizeof(buf), &d));  // bad magic
}

TEST(Wire, ReportRecordRoundTrips) {
  net::ReportRecord r{77, 123456789012345ull};
  unsigned char buf[net::kReportRecordSize];
  net::encode_report_record(r, buf);
  net::ReportRecord d = net::decode_report_record(buf);
  EXPECT_EQ(d.seq, r.seq);
  EXPECT_EQ(d.recv_ns, r.recv_ns);
}

// ---------------------------------------------------------------------------
// Live UDP loopback

namespace {

// Daemon factory that doubles as the capability probe: when loopback UDP
// is unavailable in this environment, tests skip.
std::unique_ptr<net::Daemon> try_daemon(net::DaemonConfig cfg = {}) {
  try {
    auto d = std::make_unique<net::Daemon>(cfg);
    d->start();
    return d;
  } catch (const std::exception&) {
    return nullptr;
  }
}

net::UdpTransportConfig client_config(const net::Daemon& daemon) {
  net::UdpTransportConfig cfg;
  cfg.host = "127.0.0.1";
  cfg.port = daemon.port();
  return cfg;
}

#define REQUIRE_SOCKETS(daemon_ptr)                               \
  if ((daemon_ptr) == nullptr)                                    \
  GTEST_SKIP() << "loopback UDP sockets unavailable in this environment"

}  // namespace

TEST(UdpLoopback, StreamRoundTripMeasuresEveryPacket) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  net::UdpTransport t(client_config(*daemon));
  probe::StreamSpec spec = probe::StreamSpec::periodic(10e6, 500, 50);
  probe::StreamResult res = t.send_stream(spec, sim::kMillisecond);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(res.packets.size(), 50u);
  EXPECT_EQ(res.lost_count(), 0u) << "loopback should not lose probes";
  EXPECT_EQ(res.duplicate_count, 0u);
  // Send stamps must be the actual paced times: strictly increasing.
  for (std::size_t i = 1; i < res.packets.size(); ++i)
    EXPECT_GT(res.packets[i].sent, res.packets[i - 1].sent);
  // Receive stamps come from the daemon clock: nondecreasing on loopback
  // (same socket, FIFO).
  for (std::size_t i = 1; i < res.packets.size(); ++i)
    EXPECT_GE(res.packets[i].received, res.packets[i - 1].received);
  EXPECT_GT(res.output_rate_bps(), 0.0);
  EXPECT_EQ(t.cost().packets, 50u);
  EXPECT_EQ(t.cost().streams, 1u);
}

TEST(UdpLoopback, CapacityEstimatorEndToEnd) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  net::UdpTransport t(client_config(*daemon));
  est::CapacityConfig cfg;
  cfg.pair_count = 40;
  cfg.mean_pair_gap = 2 * sim::kMillisecond;
  est::CapacityEstimator cap(cfg, stats::Rng(3));
  double cn = cap.estimate_capacity(t);
  // Loopback "capacity" is whatever the stack dispatches back-to-back
  // sends at — only positivity and sanity are meaningful.
  EXPECT_GT(cn, 0.0);
  EXPECT_EQ(cap.last_samples().size(), 40u);
}

TEST(UdpLoopback, SpruceEndToEnd) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  net::UdpTransport t(client_config(*daemon));
  est::SpruceConfig cfg;
  cfg.tight_capacity_bps = 1e9;
  cfg.pair_count = 60;
  cfg.mean_pair_gap = 2 * sim::kMillisecond;
  est::Spruce spruce(cfg, stats::Rng(5));
  est::Estimate e = spruce.estimate(t);
  ASSERT_TRUE(e.valid) << e.detail;
  EXPECT_GT(e.point_bps(), 0.0);
  EXPECT_LE(e.point_bps(), 1e9);
  EXPECT_EQ(e.cost.packets, 120u);
}

TEST(UdpLoopback, PathloadEndToEnd) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  net::UdpTransport t(client_config(*daemon));
  est::PathloadConfig cfg;
  cfg.min_rate_bps = 20e6;
  cfg.max_rate_bps = 400e6;
  cfg.packets_per_stream = 50;
  cfg.streams_per_fleet = 3;
  cfg.inter_stream_gap = 2 * sim::kMillisecond;
  cfg.resolution_bps = 50e6;
  cfg.max_fleets = 8;
  est::Pathload pl(cfg);
  est::Estimate e = pl.estimate(t);
  // Loopback has no controlled avail-bw; the contract is structured
  // termination: a range, or an explicit non-convergence/abort.
  if (e.valid) {
    EXPECT_GT(e.high_bps, 0.0);
    EXPECT_LE(e.low_bps, e.high_bps);
  } else {
    EXPECT_FALSE(e.detail.empty());
  }
  EXPECT_GT(e.cost.packets, 0u);
}

TEST(UdpLoopback, AllNineToolsTerminateStructured) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  for (const std::string& name : core::available_tools()) {
    net::UdpTransportConfig tcfg = client_config(*daemon);
    tcfg.advertise_budget_packets = 30000;
    tcfg.advertise_deadline = 8 * sim::kSecond;
    net::UdpTransport t(tcfg);

    core::ToolOptions opts;
    opts.tight_capacity_bps = 1e9;
    opts.min_rate_bps = 50e6;
    opts.max_rate_bps = 500e6;
    opts.repetitions = 6;
    opts.limits.max_probe_packets = 30000;
    opts.limits.deadline = 8 * sim::kSecond;
    stats::Rng rng(17);
    auto tool = core::make_estimator(name, opts, rng);
    est::Estimate e = tool->estimate(t);

    // Valid estimate, or a structured abort/invalid with a reason —
    // never a hang (the ctest timeout is the backstop) or empty result.
    if (e.valid) {
      EXPECT_GT(e.high_bps, 0.0) << name;
    } else {
      EXPECT_TRUE(e.abort != est::AbortReason::kNone || !e.detail.empty())
          << name << " returned an unstructured failure";
    }
    EXPECT_GT(e.cost.packets, 0u) << name;
    // The guard is checked between streams, so the budget can overshoot
    // by at most one stream (bfind's 500 ms steps are the largest).
    EXPECT_LE(e.cost.packets, 2u * 30000u)
        << name << " blew through its probe budget";
  }
  EXPECT_EQ(daemon->stats().sessions_admitted,
            core::available_tools().size());
}

TEST(UdpLoopback, DaemonMultiplexesConcurrentSessions) {
  net::DaemonConfig dcfg;
  dcfg.max_sessions = 32;
  auto daemon = try_daemon(dcfg);
  REQUIRE_SOCKETS(daemon);

  constexpr int kClients = 8;
  constexpr int kStreams = 3;
  constexpr std::size_t kPackets = 40;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> session_ids(kClients, 0);
  std::atomic<int> failures{0};

  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::UdpTransport t(client_config(*daemon));
        // Distinct packet size per client: a report bleeding across
        // sessions would surface as a count/size mismatch below.
        std::uint32_t size = 200 + 100 * static_cast<std::uint32_t>(c);
        for (int s = 0; s < kStreams; ++s) {
          probe::StreamSpec spec =
              probe::StreamSpec::periodic(5e6, size, kPackets);
          probe::StreamResult res = t.send_stream(spec, sim::kMillisecond);
          if (res.packets.size() != kPackets) ++failures;
          if (res.lost_count() != 0) ++failures;
          if (res.duplicate_count != 0) ++failures;
          for (const probe::ProbeRecord& rec : res.packets)
            if (rec.size_bytes != size) ++failures;
        }
        session_ids[c] = t.session_id();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  // Every client got its own session, and they never collided.
  for (int c = 0; c < kClients; ++c) {
    EXPECT_NE(session_ids[c], 0u) << "client " << c << " never connected";
    for (int d = c + 1; d < kClients; ++d)
      EXPECT_NE(session_ids[c], session_ids[d]);
  }
  net::DaemonStats stats = daemon->stats();
  EXPECT_EQ(stats.sessions_admitted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.probes_in,
            static_cast<std::uint64_t>(kClients) * kStreams * kPackets);
}

TEST(UdpLoopback, HelloRejectBeyondMaxSessions) {
  net::DaemonConfig dcfg;
  dcfg.max_sessions = 1;
  auto daemon = try_daemon(dcfg);
  REQUIRE_SOCKETS(daemon);

  net::UdpTransport first(client_config(*daemon));
  probe::StreamSpec spec = probe::StreamSpec::periodic(5e6, 300, 10);
  probe::StreamResult ok = first.send_stream(spec, sim::kMillisecond);
  EXPECT_EQ(ok.lost_count(), 0u);

  net::UdpTransportConfig cfg2 = client_config(*daemon);
  cfg2.hello_retries = 2;
  cfg2.hello_timeout = 50 * sim::kMillisecond;
  net::UdpTransport second(cfg2);
  probe::StreamResult rejected = second.send_stream(spec, sim::kMillisecond);
  EXPECT_FALSE(second.connected());
  EXPECT_EQ(rejected.lost_count(), rejected.packets.size());
  EXPECT_GE(daemon->stats().sessions_rejected, 1u);
}

TEST(UdpLoopback, SilentPeerTripsDeadlineAbort) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);

  net::UdpTransportConfig tcfg = client_config(*daemon);
  tcfg.report_timeout = 100 * sim::kMillisecond;
  tcfg.report_retries = 2;
  net::UdpTransport t(tcfg);

  // Establish the session while the daemon is alive...
  probe::StreamSpec warm = probe::StreamSpec::periodic(5e6, 300, 5);
  probe::StreamResult ok = t.send_stream(warm, sim::kMillisecond);
  ASSERT_TRUE(t.connected());
  ASSERT_EQ(ok.lost_count(), 0u);

  // ...then the peer goes silent mid-measurement.
  daemon->stop();
  daemon.reset();

  est::PathloadConfig cfg;
  cfg.min_rate_bps = 20e6;
  cfg.max_rate_bps = 200e6;
  cfg.packets_per_stream = 20;
  cfg.streams_per_fleet = 2;
  cfg.inter_stream_gap = sim::kMillisecond;
  est::Pathload pl(cfg);
  est::EstimatorLimits limits;
  limits.deadline = 300 * sim::kMillisecond;
  pl.set_limits(limits);

  est::Estimate e = pl.estimate(t);
  EXPECT_FALSE(e.valid);
  EXPECT_EQ(e.abort, est::AbortReason::kDeadline)
      << "expected the deadline guard to fire, got: " << e.detail;
}

TEST(UdpLoopback, DaemonExportsObsTraceAndMetrics) {
  auto daemon = try_daemon();
  REQUIRE_SOCKETS(daemon);
  obs::NullTraceSink sink;
  daemon->set_trace(&sink);

  net::UdpTransport t(client_config(*daemon));
  probe::StreamSpec spec = probe::StreamSpec::periodic(5e6, 300, 10);
  (void)t.send_stream(spec, sim::kMillisecond);

  obs::MetricsRegistry m;
  daemon->snapshot_metrics(m);
  EXPECT_EQ(m.counter("abwd.sessions_admitted").value, 1u);
  EXPECT_EQ(m.counter("abwd.probes_in").value, 10u);
  EXPECT_EQ(m.counter("abwd.reports_sent").value, 1u);
  daemon->set_trace(nullptr);
  EXPECT_GE(sink.events(), 2u);  // hello + report at minimum
}
