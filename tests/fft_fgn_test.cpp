// Tests for the FFT, the Davies-Harte fGn synthesizer, and the Hurst
// estimators — the machinery behind Eq. (5) of the paper (self-similar
// variance decay) and the synthetic NLANR-substitute trace.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "stats/fft.hpp"
#include "stats/fgn.hpp"
#include "stats/hurst.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"

namespace {

using namespace abw::stats;

// ---------------------------------------------------------------- FFT ---

TEST(Fft, DcSignal) {
  std::vector<std::complex<double>> x(8, {1.0, 0.0});
  fft(x);
  EXPECT_NEAR(x[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t n = 64;
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::cos(2.0 * M_PI * 5.0 * static_cast<double>(i) / n);
  fft(x);
  EXPECT_NEAR(std::abs(x[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[3]), 0.0, 1e-9);
}

TEST(Fft, RoundTripRestoresSignal) {
  Rng r(8);
  std::vector<std::complex<double>> x(256);
  for (auto& v : x) v = {r.normal(), r.normal()};
  auto orig = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng r(9);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {r.normal(), 0.0};
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(6);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

// ---------------------------------------------------------------- fGn ---

TEST(Fgn, AutocovarianceAtLagZeroIsVariance) {
  EXPECT_NEAR(fgn_autocovariance(0.75, 0), 1.0, 1e-12);
}

TEST(Fgn, WhiteNoiseCaseHasZeroCovariance) {
  // H = 0.5 is IID: gamma(k) = 0 for k >= 1.
  for (std::size_t k = 1; k < 10; ++k)
    EXPECT_NEAR(fgn_autocovariance(0.5, k), 0.0, 1e-12);
}

TEST(Fgn, PositiveCorrelationForHighHurst) {
  for (std::size_t k = 1; k < 10; ++k)
    EXPECT_GT(fgn_autocovariance(0.8, k), 0.0);
}

TEST(Fgn, UnitVarianceAndZeroMean) {
  // Long-range dependence makes the sample mean itself noisy:
  // Var[mean of n] = n^{2H-2}, so at H = 0.8, n = 2^14 the sample mean has
  // stddev ~0.14 — tolerances must reflect that, not IID intuition (this
  // is precisely the paper's first pitfall applied to our own generator).
  Rng r(17);
  auto x = generate_fgn(1 << 14, 0.8, r);
  EXPECT_NEAR(mean(x), 0.0, 0.45);  // ~3 sigma for H=0.8
  EXPECT_NEAR(variance(x), 1.0, 0.25);
}

TEST(Fgn, SampleMeanNoisierAtHighHurst) {
  // Eq. (4) vs Eq. (5): across seeds, the spread of sample means must be
  // far larger for H=0.9 than for H=0.5 at the same n.
  RunningStats iid_means, lrd_means;
  for (std::uint64_t s = 0; s < 12; ++s) {
    Rng r1(100 + s), r2(100 + s);
    iid_means.add(mean(generate_fgn(1 << 12, 0.5, r1)));
    lrd_means.add(mean(generate_fgn(1 << 12, 0.9, r2)));
  }
  EXPECT_GT(lrd_means.stddev(), 3.0 * iid_means.stddev());
}

TEST(Fgn, EmpiricalLagOneCovarianceMatchesTheory) {
  Rng r(18);
  auto x = generate_fgn(1 << 15, 0.8, r);
  double m = mean(x);
  double c1 = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) c1 += (x[i] - m) * (x[i - 1] - m);
  c1 /= static_cast<double>(x.size() - 1);
  EXPECT_NEAR(c1, fgn_autocovariance(0.8, 1), 0.05);
}

TEST(Fgn, RejectsBadParameters) {
  Rng r(1);
  EXPECT_THROW(generate_fgn(0, 0.8, r), std::invalid_argument);
  EXPECT_THROW(generate_fgn(64, 0.0, r), std::invalid_argument);
  EXPECT_THROW(generate_fgn(64, 1.0, r), std::invalid_argument);
}

// The paper's Eq. (5): Var[A_tau aggregated by k] = Var[A_tau] / k^{2(1-H)}.
// Property sweep over Hurst values: block-mean variance must follow the
// self-similar scaling law, which also exercises the synthesizer itself.
class FgnScaling : public ::testing::TestWithParam<double> {};

TEST_P(FgnScaling, VarianceFollowsEqFive) {
  double hurst = GetParam();
  Rng r(1234);
  auto x = generate_fgn(1 << 16, hurst, r);
  auto pts = variance_time_plot(x, {1, 4, 16, 64});
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    double k = static_cast<double>(pts[i].m) / pts[0].m;
    double predicted = pts[0].variance / std::pow(k, 2.0 * (1.0 - hurst));
    EXPECT_NEAR(pts[i].variance / predicted, 1.0, 0.35)
        << "H=" << hurst << " m=" << pts[i].m;
  }
}

INSTANTIATE_TEST_SUITE_P(HurstSweep, FgnScaling,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

// -------------------------------------------------------------- Hurst ---

class HurstRecovery : public ::testing::TestWithParam<double> {};

TEST_P(HurstRecovery, VarianceTimeEstimatorRecoversH) {
  double hurst = GetParam();
  Rng r(99);
  auto x = generate_fgn(1 << 16, hurst, r);
  EXPECT_NEAR(hurst_variance_time(x), hurst, 0.08) << "H=" << hurst;
}

INSTANTIATE_TEST_SUITE_P(HurstSweep, HurstRecovery,
                         ::testing::Values(0.55, 0.7, 0.8));

TEST(Hurst, HighHurstRecoveredWithKnownBias) {
  // The variance-time estimator is biased low for strong LRD; at H = 0.9
  // it typically lands in the mid-0.8s.  Assert the qualitative recovery.
  Rng r(99);
  auto x = generate_fgn(1 << 16, 0.9, r);
  double h = hurst_variance_time(x);
  EXPECT_GT(h, 0.78);
  EXPECT_LT(h, 0.98);
}

TEST(Hurst, RsEstimatorSeparatesShortAndLongRange) {
  Rng r(100);
  auto iid = generate_fgn(1 << 14, 0.5, r);
  auto lrd = generate_fgn(1 << 14, 0.85, r);
  double h_iid = hurst_rescaled_range(iid);
  double h_lrd = hurst_rescaled_range(lrd);
  EXPECT_LT(h_iid, h_lrd);
  EXPECT_GT(h_lrd, 0.7);
}

TEST(Hurst, RejectsShortSeries) {
  std::vector<double> x(16, 1.0);
  EXPECT_THROW(hurst_variance_time(x), std::invalid_argument);
  EXPECT_THROW(hurst_rescaled_range(x), std::invalid_argument);
}

TEST(Hurst, VariancTimePlotSkipsOversizedLevels) {
  std::vector<double> x(64, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7);
  auto pts = variance_time_plot(x, {1, 2, 64, 128});
  EXPECT_EQ(pts.size(), 2u);  // 64 and 128 leave < 2 blocks
}

// IID variance scaling, Eq. (4): variance of k-block means is Var/k.
TEST(Hurst, IidVarianceScalesInverselyWithK) {
  Rng r(55);
  std::vector<double> x;
  for (int i = 0; i < (1 << 15); ++i) x.push_back(r.normal());
  auto pts = variance_time_plot(x, {1, 8, 64});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_NEAR(pts[1].variance, pts[0].variance / 8.0, pts[0].variance * 0.1);
  EXPECT_NEAR(pts[2].variance, pts[0].variance / 64.0, pts[0].variance * 0.02);
}

}  // namespace
