// Allocation accounting for the DES hot path.  The PR 2 acceptance bar is
// ZERO heap allocations per steady-state packet event: callbacks live
// inline in pooled scheduler slots, the link transmit loop re-arms one
// recurring event, and delivery closures ([handler*, Packet]) fit
// SmallCallback's inline buffer.  This binary replaces global operator
// new/delete with counting versions and asserts the count stays flat over
// a long steady-state window after warm-up + reserve() calls.
//
// Must be its own test binary: the counting allocator is process-global.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/trace.hpp"
#include "sim/callback.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

// Sanitizers interpose their own allocator; counting through a user
// replacement is not reliable there, so the steady-state assertions skip.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ABW_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ABW_SANITIZED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace abw::sim;

std::uint64_t alloc_count() { return g_news.load(std::memory_order_relaxed); }

TEST(Allocation, SmallCallbackStoresHotPathCapturesInline) {
  // The real delivery closure: a handler pointer plus a 48-byte Packet.
  struct Delivery {
    PacketHandler* next;
    Packet pkt;
    void operator()() {}
  };
  static_assert(sizeof(Delivery) <= SmallCallback::kInlineSize,
                "delivery closures must fit inline (see packet.hpp)");
  SmallCallback cb;
  std::uint64_t before = alloc_count();
  cb.emplace(Delivery{nullptr, Packet{}});
  cb();
  cb.clear();
  EXPECT_EQ(alloc_count(), before) << "inline capture must not allocate";

  // An oversized capture falls back to the heap — exactly one allocation.
  struct Big {
    char bytes[SmallCallback::kInlineSize + 8];
    void operator()() {}
  };
  before = alloc_count();
  cb.emplace(Big{});
  EXPECT_EQ(alloc_count(), before + 1);
  cb.clear();
}

// A packet-forwarding simulation in steady state: a self-rescheduling
// injector paced at the bottleneck service rate through a two-hop path
// with propagation delays.  After a warm-up phase (pool/chunk growth,
// first-touch) and explicit reserve() calls, running thousands more
// packets must perform ZERO heap allocations.
TEST(Allocation, SteadyStatePacketEventsAreAllocationFree) {
#ifdef ABW_SANITIZED
  GTEST_SKIP() << "sanitizer build: allocator interposed";
#else
  Simulator simu;
  LinkConfig fast, tight;
  fast.capacity_bps = 1e9;
  fast.propagation_delay = 100;
  tight.capacity_bps = 5e8;  // 1500 B service time = 24 us
  tight.propagation_delay = 100;
  Path path(simu, {fast, tight});
  CountingSink sink;
  path.set_receiver(&sink);

  struct Injector {
    Simulator* simu;
    Path* path;
    void operator()() {
      Packet pkt;
      pkt.size_bytes = 1500;
      path->inject(0, pkt);
      simu->after(24000, *this);  // bottleneck pace: back-to-back service
    }
  };
  simu.at(0, Injector{&simu, &path});

  // Warm-up: grow the slot pool, ring queues, and meter storage.
  simu.run_until(200 * 24000);
  simu.reserve_events(64);
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    path.link(i).reserve_queue(64);
    // The fast link idles between packets, so every transmission is its
    // own (non-coalesced) meter interval: size for the full run.
    path.link(i).meter().reserve(16384);
  }

  const std::uint64_t events_before = simu.events_processed();
  const std::uint64_t before = alloc_count();
  simu.run_until(5000 * 24000);
  const std::uint64_t after = alloc_count();
  const std::uint64_t events = simu.events_processed() - events_before;

  EXPECT_GT(events, 10000u) << "steady-state window too small to be meaningful";
  EXPECT_EQ(after, before) << "hot path allocated " << (after - before)
                           << " times over " << events << " events";
  EXPECT_GT(sink.packets(), 4000u);
#endif
}

// Same steady-state workload with a NullTraceSink attached to every link:
// the obs layer's acceptance bar is that event *emission* (TraceEvent
// fill + virtual dispatch) allocates nothing — a sink observing the hot
// path must not reintroduce the per-event heap traffic PR 2 removed.
TEST(Allocation, NullTraceSinkSteadyStateIsAllocationFree) {
#ifdef ABW_SANITIZED
  GTEST_SKIP() << "sanitizer build: allocator interposed";
#else
  Simulator simu;
  LinkConfig fast, tight;
  fast.capacity_bps = 1e9;
  fast.propagation_delay = 100;
  tight.capacity_bps = 5e8;
  tight.propagation_delay = 100;
  Path path(simu, {fast, tight});
  CountingSink sink;
  path.set_receiver(&sink);
  abw::obs::NullTraceSink trace;
  path.link(0).set_trace(&trace);
  path.link(1).set_trace(&trace);

  struct Injector {
    Simulator* simu;
    Path* path;
    void operator()() {
      Packet pkt;
      pkt.size_bytes = 1500;
      path->inject(0, pkt);
      simu->after(24000, *this);
    }
  };
  simu.at(0, Injector{&simu, &path});

  simu.run_until(200 * 24000);
  simu.reserve_events(64);
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    path.link(i).reserve_queue(64);
    path.link(i).meter().reserve(16384);
  }

  const std::uint64_t traced_before = trace.events();
  const std::uint64_t before = alloc_count();
  simu.run_until(5000 * 24000);
  const std::uint64_t after = alloc_count();

  EXPECT_GT(trace.events(), traced_before + 10000u)
      << "the sink saw too few events for the window to be meaningful";
  EXPECT_EQ(after, before) << "trace emission allocated " << (after - before)
                           << " times";
  EXPECT_GT(sink.packets(), 4000u);
#endif
}

}  // namespace
