// Observability layer tests (label: obs): trace determinism across runs
// and thread counts, metrics-snapshot goldens, the registry-v2
// introspection API, central ToolOptions validation, and the diagnostics
// contract (every tool reports structured key/value diagnostics).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/batch.hpp"

namespace {

using namespace abw;

// ---------------------------------------------------------------------------
// Registry v2 introspection.

TEST(RegistryV2, ToolInfoRoundTripsEveryAvailableTool) {
  std::vector<std::string> names = core::available_tools();
  const std::vector<core::ToolInfo>& infos = core::available_tool_info();
  ASSERT_EQ(names.size(), infos.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Wrappers and the structured table agree, in the same stable order.
    EXPECT_EQ(names[i], infos[i].name);
    EXPECT_TRUE(core::is_tool(names[i]));
    const core::ToolInfo& info = core::tool_info(names[i]);
    EXPECT_EQ(info.name, names[i]);
    EXPECT_EQ(info.probing_class, infos[i].probing_class);
    EXPECT_EQ(info.requires_tight_capacity, infos[i].requires_tight_capacity);
    EXPECT_GE(info.default_packet_size, core::kMinProbePacketBytes);
  }
  EXPECT_THROW(core::tool_info("no-such-tool"), std::invalid_argument);
  EXPECT_FALSE(core::is_tool("no-such-tool"));
}

TEST(RegistryV2, RequiresTightCapacityMatchesMakeEstimatorBehavior) {
  stats::Rng rng(7);
  for (const core::ToolInfo& info : core::available_tool_info()) {
    core::ToolOptions no_ct;  // defaults: tight_capacity_bps == 0
    if (info.requires_tight_capacity) {
      EXPECT_THROW(core::make_estimator(info.name, no_ct, rng),
                   std::invalid_argument)
          << info.name << " claims to require Ct but built without it";
    } else {
      EXPECT_NO_THROW(core::make_estimator(info.name, no_ct, rng))
          << info.name << " claims not to require Ct but refused to build";
    }
    core::ToolOptions with_ct;
    with_ct.tight_capacity_bps = 50e6;
    auto tool = core::make_estimator(info.name, with_ct, rng);
    EXPECT_EQ(tool->name(), info.name);
    EXPECT_EQ(tool->probing_class(), info.probing_class);
  }
}

TEST(RegistryV2, MakeEstimatorValidatesOptionsCentrally) {
  stats::Rng rng(7);
  core::ToolOptions o;
  o.tight_capacity_bps = 50e6;

  core::ToolOptions inverted = o;
  inverted.min_rate_bps = 10e6;
  inverted.max_rate_bps = 10e6;  // min == max is as invalid as min > max
  core::ToolOptions neg_min = o;
  neg_min.min_rate_bps = -1.0;
  core::ToolOptions neg_max = o;
  neg_max.max_rate_bps = -5e6;
  core::ToolOptions neg_ct = o;
  neg_ct.tight_capacity_bps = -50e6;
  core::ToolOptions tiny_pkt = o;
  tiny_pkt.packet_size = core::kMinProbePacketBytes - 1;

  // Central validation: the same bad options fail for every tool.
  for (const core::ToolInfo& info : core::available_tool_info()) {
    EXPECT_THROW(core::make_estimator(info.name, inverted, rng),
                 std::invalid_argument) << info.name;
    EXPECT_THROW(core::make_estimator(info.name, neg_min, rng),
                 std::invalid_argument) << info.name;
    EXPECT_THROW(core::make_estimator(info.name, neg_max, rng),
                 std::invalid_argument) << info.name;
    EXPECT_THROW(core::make_estimator(info.name, neg_ct, rng),
                 std::invalid_argument) << info.name;
    EXPECT_THROW(core::make_estimator(info.name, tiny_pkt, rng),
                 std::invalid_argument) << info.name;
  }

  // The boundary itself is legal, as is "use the tool's default" (0).
  core::ToolOptions min_pkt = o;
  min_pkt.packet_size = core::kMinProbePacketBytes;
  EXPECT_NO_THROW(core::make_estimator("spruce", min_pkt, rng));
  EXPECT_NO_THROW(core::make_estimator("spruce", o, rng));
}

// ---------------------------------------------------------------------------
// Diagnostics contract.

TEST(Diagnostics, EstimateDiagHelpersAndJson) {
  est::Estimate e = est::Estimate::point(25e6);
  e.diag("streams", 12);
  e.diag("grey_fraction", 0.25);
  EXPECT_EQ(e.diag_value("streams"), 12.0);
  EXPECT_EQ(e.diag_value("grey_fraction"), 0.25);
  EXPECT_TRUE(std::isnan(e.diag_value("absent")));

  std::string json = e.to_json();
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"streams\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"grey_fraction\":0.25"), std::string::npos) << json;
}

TEST(Diagnostics, EveryToolPopulatesDiagnostics) {
  for (const core::ToolInfo& info : core::available_tool_info()) {
    core::SingleHopConfig cfg;
    cfg.seed = 11;
    core::Scenario sc = core::Scenario::single_hop(cfg);

    core::ToolOptions o;
    if (info.requires_tight_capacity) o.tight_capacity_bps = cfg.capacity_bps;
    o.min_rate_bps = 5e6;
    o.max_rate_bps = 0.98 * cfg.capacity_bps;
    o.repetitions = info.name == "bfind" ? 0 : 6;  // keep the run short
    o.limits.deadline = 60 * sim::kSecond;
    o.limits.max_probe_packets = 60000;
    obs::MetricsRegistry metrics;
    o.metrics = &metrics;

    auto tool = core::make_estimator(info.name, o, sc.rng());
    est::Estimate e = tool->estimate(sc.session());
    EXPECT_FALSE(e.diagnostics.empty())
        << info.name << " returned no diagnostics (valid=" << e.valid << ")";
    // The template-method wrapper synthesizes `detail` from diagnostics
    // when the tool leaves it empty, so detail is never blank either.
    EXPECT_FALSE(e.detail.empty()) << info.name;
    // Wrapper-side metrics: one run recorded under the tool's name.
    EXPECT_EQ(metrics.counter("est." + std::string(tool->name()) + ".runs")
                  .value,
              1u)
        << info.name;
  }
}

// ---------------------------------------------------------------------------
// Trace + metrics determinism.

struct CellOutput {
  std::string trace;
  std::string metrics;
};

// One fig1-style cell: seeded single-hop Poisson scenario, one spruce
// run, everything observed.  Each cell owns its sinks, so cells are
// trivially parallelizable without ordering effects.
CellOutput run_observed_cell(std::uint64_t seed) {
  core::SingleHopConfig cfg;
  cfg.seed = seed;
  core::Scenario sc = core::Scenario::single_hop(cfg);

  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  sc.set_trace(&sink);

  obs::MetricsRegistry metrics;
  sc.simulator().set_metrics(&metrics);

  core::ToolOptions o;
  o.tight_capacity_bps = cfg.capacity_bps;
  o.repetitions = 20;
  o.trace = &sink;
  o.metrics = &metrics;
  auto tool = core::make_estimator("spruce", o, sc.rng());
  (void)tool->estimate(sc.session());

  sc.snapshot_metrics(metrics);
  CellOutput cell;
  cell.trace = out.str();
  cell.metrics = metrics.to_json(/*include_timers=*/false);
  return cell;
}

TEST(TraceDeterminism, ByteIdenticalAcrossRunsAndThreadCounts) {
  constexpr std::size_t kCells = 5;
  auto run_grid = [](std::size_t jobs) {
    runner::BatchRunner pool(jobs);
    auto cells = pool.map(kCells, [](std::size_t i) {
      return run_observed_cell(100 + i);
    });
    std::string all_traces, all_metrics;
    for (const CellOutput& c : cells) {
      all_traces += c.trace;
      all_metrics += c.metrics;
      all_metrics += '\n';
    }
    return std::make_pair(all_traces, all_metrics);
  };

  auto serial = run_grid(1);
  ASSERT_FALSE(serial.first.empty());
  ASSERT_FALSE(serial.second.empty());
  // Same seeds, same bytes: repeated serial run...
  EXPECT_EQ(run_grid(1), serial);
  // ...and any thread count (cells own their sinks; results concatenate
  // in index order).
  EXPECT_EQ(run_grid(2), serial);
  EXPECT_EQ(run_grid(5), serial);
}

TEST(TraceDeterminism, AttachedSinkDoesNotPerturbTheSimulation) {
  // The estimate must be bit-identical with and without a sink attached:
  // emission draws no randomness and never advances time.
  auto run = [](bool observed) {
    core::SingleHopConfig cfg;
    cfg.seed = 23;
    core::Scenario sc = core::Scenario::single_hop(cfg);
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    if (observed) sc.set_trace(&sink);
    core::ToolOptions o;
    o.tight_capacity_bps = cfg.capacity_bps;
    o.repetitions = 20;
    auto tool = core::make_estimator("spruce", o, sc.rng());
    est::Estimate e = tool->estimate(sc.session());
    return std::make_pair(e.low_bps, sc.simulator().events_processed());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TraceDeterminism, JsonlSchemaSanity) {
  CellOutput cell = run_observed_cell(42);
  std::istringstream lines(cell.trace);
  std::string line;
  std::size_t n = 0;
  bool saw_stream_start = false, saw_deliver = false, saw_decision = false;
  while (std::getline(lines, line)) {
    ++n;
    // Every line is one object with the common prefix in fixed order.
    ASSERT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    ASSERT_EQ(line.back(), '}') << line;
    ASSERT_NE(line.find("\"ev\":\""), std::string::npos) << line;
    ASSERT_NE(line.find("\"src\":\""), std::string::npos) << line;
    if (line.find("\"ev\":\"stream-start\"") != std::string::npos) {
      saw_stream_start = true;
      EXPECT_NE(line.find("\"count\":"), std::string::npos) << line;
    }
    if (line.find("\"ev\":\"deliver\"") != std::string::npos) {
      saw_deliver = true;
      EXPECT_NE(line.find("\"pkt\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"q\":"), std::string::npos) << line;
    }
    if (line.find("\"ev\":\"decision\"") != std::string::npos) {
      saw_decision = true;
      EXPECT_NE(line.find("\"what\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"outcome\":"), std::string::npos) << line;
    }
  }
  EXPECT_GT(n, 100u);
  EXPECT_TRUE(saw_stream_start);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_decision);
}

TEST(MetricsSnapshot, MatchesLinkStatsAndSessionCost) {
  core::SingleHopConfig cfg;
  cfg.seed = 3;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  core::ToolOptions o;
  o.tight_capacity_bps = cfg.capacity_bps;
  o.repetitions = 20;
  auto tool = core::make_estimator("spruce", o, sc.rng());
  (void)tool->estimate(sc.session());

  obs::MetricsRegistry m;
  sc.snapshot_metrics(m);
  const sim::LinkStats& s = sc.path().link(0).stats();
  EXPECT_EQ(m.counter("link.link0.packets_in").value, s.packets_in);
  EXPECT_EQ(m.counter("link.link0.packets_out").value, s.packets_out);
  EXPECT_EQ(m.counter("link.link0.bytes_out").value, s.bytes_out);
  EXPECT_EQ(m.gauge("link.link0.capacity_bps").value, cfg.capacity_bps);
  EXPECT_EQ(m.counter("session.streams").value, sc.session().cost().streams);
  EXPECT_EQ(m.counter("session.packets").value, sc.session().cost().packets);
  EXPECT_EQ(m.counter("sim.events").value,
            sc.simulator().events_processed());
}

TEST(MetricsSnapshot, GoldenShapeForOneFig1Cell) {
  // Frozen prefix of the deterministic snapshot for seed 42 — guards the
  // metric *names* and JSON shape against silent schema drift.  Values
  // are checked for self-consistency above, not frozen here.
  CellOutput cell = run_observed_cell(42);
  EXPECT_EQ(cell.metrics.rfind("{\"counters\":{\"est.spruce.", 0), 0u)
      << cell.metrics.substr(0, 80);
  EXPECT_NE(cell.metrics.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(cell.metrics.find("\"histograms\":{"), std::string::npos);
  EXPECT_EQ(cell.metrics.find("\"timers\""), std::string::npos)
      << "timers must be excluded from the deterministic snapshot";
  EXPECT_NE(cell.metrics.find("\"link.link0.packets_out\":"),
            std::string::npos);
  EXPECT_NE(cell.metrics.find("\"session.streams\":"), std::string::npos);
}

TEST(MetricsSnapshot, TimersAppearOnlyWhenRequested) {
  obs::MetricsRegistry m;
  m.counter("a").add(3);
  m.timer("wall").record(0.5);
  std::string deterministic = m.to_json(false);
  std::string full = m.to_json(true);
  EXPECT_EQ(deterministic.find("timers"), std::string::npos);
  EXPECT_NE(full.find("\"timers\":{\"wall\":"), std::string::npos) << full;
}

// ------------------------------------------ non-finite value round-trip ---
//
// snprintf("%.17g") renders NaN/Inf as the bare tokens `nan` / `inf`,
// which are NOT valid JSON — a single poisoned diagnostic used to corrupt
// the whole metrics snapshot or trace line.  Non-finite doubles must
// serialize as `null`.

TEST(NonFiniteJson, MetricsGaugeSerializesNaNAndInfAsNull) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  obs::MetricsRegistry m;
  m.gauge("poisoned.nan").set(kNaN);
  m.gauge("poisoned.pinf").set(kInf);
  m.gauge("poisoned.ninf").set(-kInf);
  m.gauge("healthy").set(2.5);
  std::string json = m.to_json(false);
  EXPECT_NE(json.find("\"poisoned.nan\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"poisoned.pinf\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"poisoned.ninf\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"healthy\":2.5"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan\":n"), json.find("nan\":null")) << json;
  for (const char* bare : {":nan", ":inf", ":-inf"})
    EXPECT_EQ(json.find(bare), std::string::npos) << json;
}

TEST(NonFiniteJson, HistogramWithNonFiniteBoundsStaysValidJson) {
  const double kInf = std::numeric_limits<double>::infinity();
  obs::MetricsRegistry m;
  // A histogram whose shape was (mis)configured from a poisoned value.
  m.histogram("h", 0.0, kInf, 4).add(1.0);
  std::string json = m.to_json(false);
  EXPECT_EQ(json.find(":inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hi\":null"), std::string::npos) << json;
}

TEST(NonFiniteJson, TraceEventValuesSerializeAsNull) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kDecision;
  ev.time = 42;
  ev.source = "tool";
  ev.label = "estimate";
  ev.text = "diverged";
  ev.value = kNaN;
  ev.value2 = -kInf;
  sink.emit(ev);
  ev.value = 12.5;
  ev.value2 = kInf;
  sink.emit(ev);
  std::string lines = out.str();
  EXPECT_NE(lines.find("\"value\":null"), std::string::npos) << lines;
  EXPECT_NE(lines.find("\"aux\":null"), std::string::npos) << lines;
  EXPECT_NE(lines.find("\"value\":12.5"), std::string::npos) << lines;
  for (const char* bare : {":nan", ":inf", ":-inf"})
    EXPECT_EQ(lines.find(bare), std::string::npos) << lines;
}

}  // namespace
