// Tests for the direct-probing estimators (Delphi-style direct, Spruce)
// and the packet-pair capacity estimator: accuracy on fluid-like traffic,
// the Eq. 9 algebra, and the documented failure modes the paper warns
// about.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "est/capacity.hpp"
#include "est/direct.hpp"
#include "est/spruce.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ------------------------------------------------------------ equation ---

TEST(DirectEquation, InvertsEquationEight) {
  // If Ro came from Eq. 8 with known A, Eq. 9 must return that A.
  double ct = 50e6, a = 25e6;
  for (double ri : {30e6, 40e6, 49e6}) {
    double ro = ri * ct / (ct + ri - a);
    auto est = est::direct_probe_equation(ct, ri, ro);
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(*est, a, 1.0) << "Ri=" << ri;
  }
}

TEST(DirectEquation, UncongestedStreamGivesNoSample) {
  EXPECT_FALSE(est::direct_probe_equation(50e6, 20e6, 20e6).has_value());
  EXPECT_FALSE(est::direct_probe_equation(50e6, 20e6, 21e6).has_value());
}

TEST(DirectEquation, RejectsNonPositiveRates) {
  EXPECT_THROW(est::direct_probe_equation(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(est::direct_probe_equation(1, 0, 1), std::invalid_argument);
}

// --------------------------------------------------------- DirectProber ---

TEST(DirectProber, RecoversAvailBwOnCbr) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 40e6;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 1e6);
}

TEST(DirectProber, RecoversAvailBwOnPoissonWithinVariability) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 40e6;
  dc.stream_count = 40;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  // Bursty cross traffic biases direct probing low (the paper's point);
  // accept up to 20% underestimation but no overestimation beyond noise.
  EXPECT_GT(e.point_bps(), 25e6 * 0.75);
  EXPECT_LT(e.point_bps(), 25e6 * 1.1);
}

// Property sweep: the prober tracks the configured avail-bw across
// utilizations (CBR cross, fluid-like regime).
class DirectSweep : public ::testing::TestWithParam<double> {};

TEST_P(DirectSweep, TracksConfiguredAvailBw) {
  double cross = GetParam();
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_rate_bps = cross;
  cfg.seed = 42;
  auto sc = core::Scenario::single_hop(cfg);
  double a = cfg.capacity_bps - cross;

  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = std::min(cfg.capacity_bps * 0.96, a + 15e6);
  dc.stream_count = 10;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid) << "cross=" << cross;
  EXPECT_NEAR(e.point_bps(), a, a * 0.08) << "cross=" << cross;
}

INSTANTIATE_TEST_SUITE_P(UtilizationSweep, DirectSweep,
                         ::testing::Values(10e6, 20e6, 30e6, 40e6));

TEST(DirectProber, WrongCapacityBiasesEstimate) {
  // The narrow-vs-tight pitfall in miniature: feeding the wrong Ct into
  // Eq. 9 shifts the estimate.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = 30e6;  // wrong: true Ct is 50
  dc.input_rate_bps = 40e6;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_GT(std::abs(e.point_bps() - 25e6), 3e6);
}

TEST(DirectProber, InvalidWhenNeverCongesting) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 10e6;  // far below A = 25
  dc.stream_count = 5;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  EXPECT_FALSE(e.valid);
}

TEST(DirectProber, StreamSpecHonorsDuration) {
  est::DirectConfig dc;
  dc.tight_capacity_bps = 50e6;
  dc.input_rate_bps = 40e6;
  dc.stream_duration = 100 * kMillisecond;
  est::DirectProber prober(dc);
  auto spec = prober.stream_spec();
  EXPECT_NEAR(sim::to_seconds(spec.span()), 0.1, 0.001);
  EXPECT_NEAR(spec.nominal_rate_bps(), 40e6, 1e3);
}

TEST(DirectProber, RequiresCapacity) {
  est::DirectConfig dc;  // tight_capacity_bps = 0
  EXPECT_THROW(est::DirectProber{dc}, std::invalid_argument);
}

// --------------------------------------------------------------- Spruce ---

TEST(Spruce, AccurateOnCbrCross) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  est::Spruce spruce(spc, sc.rng().fork());
  auto e = spruce.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 3e6);
  EXPECT_EQ(spruce.last_samples().size(), 100u);
}

TEST(Spruce, ReasonableOnPoissonCross) {
  core::SingleHopConfig cfg;
  cfg.seed = 7;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  spc.pair_count = 300;
  est::Spruce spruce(spc, sc.rng().fork());
  auto e = spruce.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 5e6);
}

TEST(Spruce, SamplesClampedToPhysicalRange) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kParetoOnOff;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  est::Spruce spruce(spc, sc.rng().fork());
  (void)spruce.estimate(sc.session());
  for (double s : spruce.last_samples()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, cfg.capacity_bps);
  }
}

TEST(Spruce, RequiresCapacity) {
  est::SpruceConfig spc;
  EXPECT_THROW(est::Spruce(spc, stats::Rng(1)), std::invalid_argument);
}

// ------------------------------------------------------------ Capacity ---

TEST(CapacityEstimator, FindsNarrowLinkOnIdlePath) {
  std::vector<sim::LinkConfig> links(3);
  links[0].capacity_bps = 100e6;
  links[1].capacity_bps = 30e6;  // narrow
  links[2].capacity_bps = 80e6;
  auto sc = core::Scenario::custom(links, 5);
  est::CapacityConfig cc;
  est::CapacityEstimator cap(cc, sc.rng().fork());
  double cn = cap.estimate_capacity(sc.session());
  EXPECT_NEAR(cn, 30e6, 30e6 * 0.1);
}

TEST(CapacityEstimator, FindsNarrowNotTight) {
  // The pitfall topology: tight link (50 Mb/s, loaded) before a narrow
  // link (40 Mb/s, idle).  A capacity tool must report ~40, not 50.
  std::vector<sim::LinkConfig> links(2);
  links[0].capacity_bps = 50e6;
  links[1].capacity_bps = 40e6;
  auto sc = core::Scenario::custom(links, 6);
  traffic::PoissonGenerator cross(sc.simulator(), sc.path(), 0, true, 1,
                                  sc.rng().fork(), 35e6,
                                  traffic::SizeDistribution::fixed(1500));
  cross.start(0, 120 * kSecond);
  sc.simulator().run_until(kSecond);

  est::CapacityConfig cc;
  cc.pair_count = 200;
  est::CapacityEstimator cap(cc, sc.rng().fork());
  double cn = cap.estimate_capacity(sc.session());
  EXPECT_NEAR(cn, 40e6, 40e6 * 0.15);
  // Tight-link avail-bw is 15 Mb/s — far below the capacity estimate, so
  // using cn as Ct in Eq. 9 is the documented mistake.
  EXPECT_GT(cn, 20e6);
}

TEST(CapacityEstimator, SamplesExposedForDiagnostics) {
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = 25e6;
  auto sc = core::Scenario::custom(links, 7);
  est::CapacityConfig cc;
  cc.pair_count = 50;
  est::CapacityEstimator cap(cc, sc.rng().fork());
  (void)cap.estimate_capacity(sc.session());
  EXPECT_EQ(cap.last_samples().size(), 50u);
}

}  // namespace
