// Conservative parallel DES correctness suite (sim/domain.hpp,
// sim/partition.hpp, core/parallel_scenario.hpp) plus the vectorized
// FluidQueue bulk-retirement equivalence proofs (sim/fluid.cpp).
//
// The two load-bearing properties:
//
//  * Thread-count invariance: for a FIXED partition, per-link stats,
//    per-packet probe timestamps, per-domain event counts, and handoff
//    totals are bit-identical under 1, 2, and 4 worker threads.
//
//  * Cut invariance: for a FIXED worker-independent seeding scheme
//    (ParallelScenario derives per-hop RNGs from the global hop index),
//    ANY legal partition — including the trivial single-domain one —
//    produces identical physics: LinkStats, StreamResults, ground truth,
//    and the online estimator belief fed from those streams.  This is
//    checked over randomized cut sets, not a hand-picked pair.
//
// Registered under ctest label "tsan": built with -DABW_TSAN=ON this
// suite exercises the two-barrier window engine under ThreadSanitizer.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "core/parallel_scenario.hpp"
#include "core/scenario.hpp"
#include "est/online/kalman.hpp"
#include "probe/stream_spec.hpp"
#include "sim/domain.hpp"
#include "sim/fluid.hpp"
#include "sim/link.hpp"
#include "sim/partition.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace abw;

struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void time(sim::SimTime t) { u64(static_cast<std::uint64_t>(t)); }
};

void digest_link(Digest& d, const sim::Link& link) {
  const sim::LinkStats& s = link.stats();
  d.u64(s.packets_in);
  d.u64(s.packets_out);
  d.u64(s.packets_dropped);
  d.u64(s.bytes_in);
  d.u64(s.bytes_out);
}

void digest_stream(Digest& d, const probe::StreamResult& res) {
  d.u64(res.stream_id);
  d.u64(res.duplicate_count);
  d.u64(res.reordered_count);
  for (const auto& p : res.packets) {
    d.u64(p.seq);
    d.time(p.sent);
    d.time(p.received);
    d.b(p.lost);
  }
}

std::vector<sim::LinkConfig> uniform_links(std::size_t hops, sim::SimTime prop) {
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.propagation_delay = prop;
  lc.queue_limit_bytes = 2 << 20;
  return std::vector<sim::LinkConfig>(hops, lc);
}

// ---------------------------------------------------------------------------
// Partition planning

TEST(PartitionPlan, FromCutsComputesLookaheadAndBounds) {
  auto links = uniform_links(8, 5 * sim::kMillisecond);
  links[3].propagation_delay = 2 * sim::kMillisecond;
  auto plan = sim::plan_from_cuts(links, {1, 3, 5});
  EXPECT_EQ(plan.domain_count(), 4u);
  EXPECT_EQ(plan.domain_end, (std::vector<std::size_t>{2, 4, 6, 8}));
  EXPECT_EQ(plan.lookahead, 2 * sim::kMillisecond);  // min cut latency
  EXPECT_EQ(plan.domain_begin(0), 0u);
  EXPECT_EQ(plan.domain_begin(2), 4u);
  EXPECT_EQ(plan.domain_of(0), 0u);
  EXPECT_EQ(plan.domain_of(3), 1u);
  EXPECT_EQ(plan.domain_of(7), 3u);
}

TEST(PartitionPlan, RejectsIllegalCuts) {
  auto links = uniform_links(4, sim::kMillisecond);
  EXPECT_THROW(sim::plan_from_cuts(links, {3}), std::invalid_argument);
  EXPECT_THROW(sim::plan_from_cuts(links, {2, 1}), std::invalid_argument);
  EXPECT_THROW(sim::plan_from_cuts(links, {1, 1}), std::invalid_argument);
  links[1].propagation_delay = 0;
  EXPECT_THROW(sim::plan_from_cuts(links, {1}), std::invalid_argument);
}

TEST(PartitionPlan, AutoPlannerBalancesAndFallsBack) {
  auto links = uniform_links(8, 5 * sim::kMillisecond);
  auto plan = sim::plan_partition(links, 4);
  EXPECT_EQ(plan.domain_count(), 4u);
  EXPECT_EQ(plan.domain_end, (std::vector<std::size_t>{2, 4, 6, 8}));

  // Only one viable cut: falls back to two domains.
  auto sparse = uniform_links(8, 0);
  sparse[4].propagation_delay = 3 * sim::kMillisecond;
  sparse[7].propagation_delay = 3 * sim::kMillisecond;  // final link: not a cut
  auto plan2 = sim::plan_partition(sparse, 4);
  EXPECT_EQ(plan2.domain_count(), 2u);
  EXPECT_EQ(plan2.domain_end, (std::vector<std::size_t>{5, 8}));

  // No viable cut at all: the trivial single-domain plan.
  auto flat = uniform_links(3, 0);
  auto plan3 = sim::plan_partition(flat, 4);
  EXPECT_EQ(plan3.domain_count(), 1u);
  EXPECT_GT(plan3.lookahead, 0);
}

// ---------------------------------------------------------------------------
// Thread-count invariance (fixed partition)

core::ParallelScenarioConfig invariance_config(std::size_t threads) {
  core::ParallelScenarioConfig cfg;
  cfg.hop_count = 8;
  cfg.capacity_bps = 50e6;
  cfg.cross_rate_bps = 20e6;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = 5 * sim::kSecond;
  cfg.warmup = 200 * sim::kMillisecond;
  cfg.seed = 17;
  cfg.cuts = {1, 3, 5};  // 4 domains
  cfg.threads = threads;
  return cfg;
}

struct InvarianceRun {
  std::uint64_t digest = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t probe_packets = 0;
  std::vector<std::uint64_t> domain_events;
};

InvarianceRun run_invariance(std::size_t threads) {
  core::ParallelScenario sc(invariance_config(threads));
  Digest d;
  InvarianceRun out;
  for (int k = 0; k < 3; ++k) {
    auto res =
        sc.send_periodic_stream(20e6 + 5e6 * k, 1500, 80, sim::kMillisecond);
    out.probe_packets += res.packets.size();
    digest_stream(d, res);
    d.f64(res.output_rate_bps());
  }
  for (std::size_t g = 0; g < sc.parallel().hop_count(); ++g)
    digest_link(d, sc.parallel().link(g));
  d.f64(sc.ground_truth(100 * sim::kMillisecond, sc.now()));
  for (std::size_t dm = 0; dm < sc.parallel().domain_count(); ++dm) {
    const std::uint64_t ev = sc.parallel().domain(dm).stats().events;
    out.domain_events.push_back(ev);
    d.u64(ev);
  }
  d.u64(sc.parallel().windows());
  d.u64(sc.parallel().handoffs());
  out.handoffs = sc.parallel().handoffs();
  out.digest = d.h;
  return out;
}

TEST(ParallelDes, BitIdenticalAcrossWorkerThreadCounts) {
  const InvarianceRun one = run_invariance(1);
  const InvarianceRun two = run_invariance(2);
  const InvarianceRun four = run_invariance(4);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, four.digest);
  EXPECT_EQ(one.domain_events, two.domain_events);
  EXPECT_EQ(one.domain_events, four.domain_events);
}

TEST(ParallelDes, HandoffAccountingIsExact) {
  const InvarianceRun r = run_invariance(2);
  // Cross traffic is one-hop persistent and never crosses a cut; with no
  // drops, every probe packet crosses every one of the 3 cuts exactly
  // once.
  EXPECT_EQ(r.handoffs, r.probe_packets * 3);
  EXPECT_GT(r.probe_packets, 0u);
}

// ---------------------------------------------------------------------------
// Cut invariance (randomized partition boundaries)

struct CutRun {
  std::uint64_t physics_digest = 0;  // links + streams + ground truth
  double kalman_estimate = 0.0;
  double kalman_alpha = 0.0;
};

CutRun run_with_cuts(const std::vector<std::size_t>& cuts, sim::SimMode mode,
                     std::size_t threads) {
  core::ParallelScenarioConfig cfg;
  cfg.hop_count = 6;
  cfg.loaded_hops = {0, 2, 4};
  cfg.capacity_bps = 50e6;
  cfg.cross_rate_bps = 25e6;
  cfg.mode = mode;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = 5 * sim::kSecond;
  cfg.warmup = 200 * sim::kMillisecond;
  cfg.seed = 29;
  cfg.cuts = cuts;
  if (cuts.empty()) cfg.domains = 1;
  cfg.threads = threads;
  core::ParallelScenario sc(cfg);

  est::online::KalmanTracker kalman;
  Digest d;
  for (int k = 0; k < 4; ++k) {
    auto res =
        sc.send_periodic_stream(18e6 + 6e6 * k, 1500, 60, sim::kMillisecond);
    digest_stream(d, res);
    kalman.feed(res);
  }
  for (std::size_t g = 0; g < sc.parallel().hop_count(); ++g)
    digest_link(d, sc.parallel().link(g));
  d.f64(sc.ground_truth(100 * sim::kMillisecond, sc.now()));

  CutRun out;
  out.physics_digest = d.h;
  out.kalman_estimate = kalman.belief().estimate_bps;
  out.kalman_alpha = kalman.alpha();
  return out;
}

TEST(ParallelDes, AnyLegalCutMatchesTheSingleDomainRun) {
  const CutRun base = run_with_cuts({}, sim::SimMode::kPacket, 1);

  std::mt19937 rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    // Random non-empty ascending subset of the legal cut links {0..4}.
    std::vector<std::size_t> cuts;
    while (cuts.empty()) {
      for (std::size_t c = 0; c < 5; ++c)
        if (rng() % 2) cuts.push_back(c);
    }
    const CutRun got =
        run_with_cuts(cuts, sim::SimMode::kPacket, 1 + trial % 3);
    EXPECT_EQ(got.physics_digest, base.physics_digest)
        << "trial " << trial << " with " << cuts.size() << " cuts";
    EXPECT_EQ(got.kalman_estimate, base.kalman_estimate);
    EXPECT_EQ(got.kalman_alpha, base.kalman_alpha);
  }
}

TEST(ParallelDes, CutInvarianceHoldsInHybridMode) {
  const CutRun base = run_with_cuts({}, sim::SimMode::kHybrid, 1);
  const CutRun one = run_with_cuts({2}, sim::SimMode::kHybrid, 2);
  const CutRun two = run_with_cuts({0, 3}, sim::SimMode::kHybrid, 3);
  EXPECT_EQ(base.physics_digest, one.physics_digest);
  EXPECT_EQ(base.physics_digest, two.physics_digest);
  EXPECT_EQ(base.kalman_estimate, one.kalman_estimate);
  EXPECT_EQ(base.kalman_estimate, two.kalman_estimate);
}

// ---------------------------------------------------------------------------
// Vectorized fluid bulk retirement == scalar, bit for bit

struct FluidOutcome {
  std::uint64_t digest = 0;
  std::uint64_t bulk_packets = 0;
};

// Feeds a synthetic arrival schedule through a FluidQueue in chunks and
// digests everything observable: link counters, meter series, interval
// count, residual backlog.
FluidOutcome run_fluid(bool vectorized, double load_factor,
                       std::size_t queue_limit, bool straddle_horizon,
                       std::uint32_t seed) {
  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.propagation_delay = sim::kMillisecond;
  lc.queue_limit_bytes = queue_limit;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  sim::FluidQueue& fq = path.link(0).enable_fluid();
  fq.set_vectorized(vectorized);
  fq.reset(0);

  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(1.0);
  const std::uint32_t size_choices[4] = {40, 576, 1500, 1004};
  const double mean_gap_s = 1500.0 * 8.0 / (50e6 * load_factor);

  sim::SimTime t = 0;
  std::vector<sim::SimTime> times;
  std::vector<std::uint32_t> sizes;
  Digest d;
  for (int chunk = 0; chunk < 24; ++chunk) {
    times.clear();
    sizes.clear();
    const std::size_t n = 64 + rng() % 512;
    for (std::size_t i = 0; i < n; ++i) {
      t += sim::from_seconds(gap(rng) * mean_gap_s);
      times.push_back(t);
      sizes.push_back(size_choices[rng() % 4]);
    }
    // Horizon at the chunk end, or pulled back into the chunk to force
    // straddling runs onto the exact per-packet path.
    sim::SimTime record_until = times.back();
    if (straddle_horizon && chunk % 3 == 1)
      record_until = times[n / 2] + (times.back() - times[n / 2]) / 4;
    // Contract: all absorbed arrivals are <= record_until; split the
    // chunk there and advance past the remainder like the pump does.
    std::size_t m = n;
    while (m > 0 && times[m - 1] > record_until) --m;
    if (m == 0) continue;
    fq.absorb(times.data(), sizes.data(), m, record_until);
    t = times[m - 1];
    // Periodically drain to an idle point so both paths cross the
    // carried-backlog code.
    if (chunk % 5 == 4) {
      t += sim::from_seconds(mean_gap_s * 64);
      fq.advance(t);
    }
    d.u64(static_cast<std::uint64_t>(fq.free_at()));
    d.u64(fq.backlog_bytes());
    d.u64(fq.in_system());
  }
  const sim::SimTime end = t + sim::kSecond;
  fq.advance(end);

  digest_link(d, path.link(0));
  const auto& meter = path.link(0).meter();
  d.time(meter.busy_time(0, end));
  d.u64(meter.interval_count());
  for (double a :
       meter.avail_bw_series(0, end, 10 * sim::kMillisecond, false))
    d.f64(a);

  FluidOutcome out;
  out.digest = d.h;
  out.bulk_packets = fq.bulk_packets();
  return out;
}

TEST(FluidSimd, BulkRetirementIsBitEqualToScalar) {
  struct Case {
    double load;
    std::size_t limit;
    bool straddle;
  };
  const Case cases[] = {
      {0.3, 2u << 20, false},  // light load: long idle gaps, short runs
      {0.8, 2u << 20, false},  // heavy load: long runs, carried backlog
      {0.8, 2u << 20, true},   // horizon straddles mid-chunk
      {0.9, 6000, false},      // tiny queue: drop path engages
      {1.2, 2u << 20, false},  // overload: one run per chunk, deep backlog
  };
  std::uint32_t seed = 5;
  for (const Case& c : cases) {
    FluidOutcome scalar = run_fluid(false, c.load, c.limit, c.straddle, seed);
    FluidOutcome simd = run_fluid(true, c.load, c.limit, c.straddle, seed);
    EXPECT_EQ(simd.digest, scalar.digest)
        << "load=" << c.load << " limit=" << c.limit
        << " straddle=" << c.straddle;
    EXPECT_EQ(scalar.bulk_packets, 0u);
    ++seed;
  }
}

TEST(FluidSimd, BulkPathActuallyEngages) {
  FluidOutcome simd = run_fluid(true, 0.5, 2u << 20, false, 42);
  EXPECT_GT(simd.bulk_packets, 0u);
}

// Hybrid scenarios run the same absorb stream through both settings: the
// end-to-end digest (probe timestamps, meters, counters) must agree.
std::uint64_t run_hybrid_scenario(bool vectorized) {
  core::SingleHopConfig cfg;
  cfg.mode = sim::SimMode::kHybrid;
  cfg.model = core::CrossModel::kPoisson;
  cfg.seed = 31;
  auto sc = core::Scenario::single_hop(cfg);
  sc.path().link(0).fluid()->set_vectorized(vectorized);

  Digest d;
  for (int k = 0; k < 6; ++k) {
    auto spec = probe::StreamSpec::periodic(15e6 + 4e6 * k, 1500, 60);
    auto res =
        sc.session().send_stream(spec, sc.simulator().now() + sim::kMillisecond);
    digest_stream(d, res);
    d.f64(res.output_rate_bps());
  }
  digest_link(d, sc.path().link(0));
  d.f64(sc.ground_truth(sim::kSecond, sc.simulator().now()));
  return d.h;
}

TEST(FluidSimd, HybridScenarioDigestMatchesScalar) {
  EXPECT_EQ(run_hybrid_scenario(true), run_hybrid_scenario(false));
}

}  // namespace
