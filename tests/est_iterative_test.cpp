// Tests for the iterative-probing estimators: TOPP, Pathload, pathChirp,
// IGI/PTR, and BFind.  Fluid-like (CBR) scenarios give sharp accuracy
// targets; bursty scenarios verify the qualitative behaviours the paper
// describes (ranges, underestimation).
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "est/bfind.hpp"
#include "est/direct.hpp"
#include "est/igi_ptr.hpp"
#include "est/pathchirp.hpp"
#include "est/pathload.hpp"
#include "est/topp.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

core::Scenario cbr_scenario(std::uint64_t seed = 1) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.seed = seed;
  return core::Scenario::single_hop(cfg);
}

core::Scenario poisson_scenario(std::uint64_t seed = 1) {
  core::SingleHopConfig cfg;
  cfg.seed = seed;
  return core::Scenario::single_hop(cfg);
}

// ----------------------------------------------------------------- TOPP ---

TEST(Topp, RecoversAvailBwAndCapacityOnCbr) {
  auto sc = cbr_scenario();
  est::ToppConfig tc;
  tc.min_rate_bps = 5e6;
  tc.max_rate_bps = 48e6;
  tc.rate_step_bps = 2e6;
  est::Topp topp(tc, sc.rng().fork());
  auto e = topp.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 3e6);
  // TOPP's bonus: the tight-link capacity from the regression slope.
  EXPECT_NEAR(topp.estimated_capacity_bps(), 50e6, 7e6);
}

TEST(Topp, CurveShapeMatchesTheory) {
  auto sc = cbr_scenario();
  est::ToppConfig tc;
  tc.min_rate_bps = 5e6;
  tc.max_rate_bps = 45e6;
  tc.rate_step_bps = 5e6;
  est::Topp topp(tc, sc.rng().fork());
  (void)topp.estimate(sc.session());
  const auto& curve = topp.last_curve();
  ASSERT_GE(curve.size(), 8u);
  // Below A: ratio near 1 (within the few-percent packet-granularity
  // inflation the paper's burstiness pitfall describes).  Above A:
  // strictly growing with Ri.
  for (const auto& pt : curve) {
    if (pt.offered_rate_bps < 20e6) {
      EXPECT_NEAR(pt.mean_ratio, 1.0, 0.08);
    }
  }
  EXPECT_GT(curve.back().mean_ratio, 1.1);
}

TEST(Topp, ReasonableUnderPoisson) {
  auto sc = poisson_scenario(3);
  est::ToppConfig tc;
  tc.min_rate_bps = 5e6;
  tc.max_rate_bps = 48e6;
  est::Topp topp(tc, sc.rng().fork());
  auto e = topp.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.point_bps(), 10e6);
  EXPECT_LT(e.point_bps(), 35e6);
}

TEST(Topp, RejectsBadSweep) {
  est::ToppConfig bad;
  bad.max_rate_bps = bad.min_rate_bps;
  EXPECT_THROW(est::Topp(bad, stats::Rng(1)), std::invalid_argument);
}

// ------------------------------------------------------------- Pathload ---

TEST(Pathload, RangeBracketsAvailBwOnCbr) {
  auto sc = cbr_scenario();
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 50e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_LE(e.low_bps, 26e6);
  EXPECT_GE(e.high_bps, 24e6);
  EXPECT_LT(e.high_bps - e.low_bps, 15e6);
  EXPECT_GT(pl.fleets_used(), 2u);
}

class PathloadSweep : public ::testing::TestWithParam<double> {};

TEST_P(PathloadSweep, TracksConfiguredAvailBwOnCbr) {
  double cross = GetParam();
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_rate_bps = cross;
  cfg.seed = 11;
  auto sc = core::Scenario::single_hop(cfg);
  double a = cfg.capacity_bps - cross;

  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid) << "cross=" << cross;
  EXPECT_NEAR(e.point_bps(), a, 6e6) << "cross=" << cross;
}

INSTANTIATE_TEST_SUITE_P(UtilizationSweep, PathloadSweep,
                         ::testing::Values(15e6, 25e6, 35e6));

TEST(Pathload, WiderRangeUnderBurstyCross) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kParetoOnOff;
  cfg.seed = 4;
  auto sc = core::Scenario::single_hop(cfg);
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 50e6;
  pc.streams_per_fleet = 8;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  // Burstiness widens the reported variation range (the paper's point
  // about range vs point estimates).
  EXPECT_GT(e.high_bps - e.low_bps, 2e6);
}

TEST(Pathload, FleetVerdictsSeparateRates) {
  auto sc = cbr_scenario();
  est::PathloadConfig pc;
  est::Pathload pl(pc);
  EXPECT_EQ(pl.probe_fleet(sc.transport(), 40e6), est::FleetVerdict::kAboveAvailBw);
  EXPECT_EQ(pl.probe_fleet(sc.transport(), 10e6), est::FleetVerdict::kBelowAvailBw);
}

TEST(Pathload, RejectsBadConfig) {
  est::PathloadConfig bad;
  bad.max_rate_bps = bad.min_rate_bps;
  EXPECT_THROW(est::Pathload{bad}, std::invalid_argument);
}

// ------------------------------------------------------------ pathChirp ---

TEST(PathChirp, RecoversAvailBwOnCbr) {
  auto sc = cbr_scenario();
  est::PathChirpConfig pc;
  pc.low_rate_bps = 4e6;
  pc.spread_factor = 1.2;
  pc.packets_per_chirp = 20;  // top rate ~ 4 * 1.2^18 ~ 106 Mb/s
  pc.chirps = 20;
  est::PathChirp chirp(pc);
  auto e = chirp.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 8e6);
}

TEST(PathChirp, AnalyzeChirpRules) {
  est::PathChirpConfig pc;
  est::PathChirp chirp(pc);

  // Build a synthetic chirp: 12 gaps probing 10, 12, 14.4, ... Mb/s.
  std::vector<double> rates, gaps;
  double r = 10e6;
  for (int k = 0; k < 12; ++k) {
    rates.push_back(r);
    gaps.push_back(1000 * 8.0 / r);
    r *= 1.2;
  }

  // Case 1: no queueing anywhere -> estimate = top rate.
  std::vector<double> flat(13, 0.010);
  EXPECT_DOUBLE_EQ(chirp.analyze_chirp(flat, rates, gaps), rates.back());

  // Case 2: delays keep rising from packet 6 to the end (unterminated
  // excursion): estimate must drop to ~ the onset rate, far below top.
  std::vector<double> rising(13, 0.010);
  for (int i = 6; i < 13; ++i) rising[i] = 0.010 + 0.002 * (i - 5);
  double e2 = chirp.analyze_chirp(rising, rates, gaps);
  EXPECT_LT(e2, rates.back() * 0.8);
  EXPECT_GE(e2, rates.front() * 0.5);

  // Case 3: a transient mid-chirp excursion that clears -> estimate stays
  // near the top rate (burst, not congestion onset).
  std::vector<double> bump(13, 0.010);
  bump[4] = 0.012;
  bump[5] = 0.013;
  bump[6] = 0.011;
  double e3 = chirp.analyze_chirp(bump, rates, gaps);
  EXPECT_GT(e3, e2);
}

TEST(PathChirp, UnusableChirpReturnsZero) {
  est::PathChirpConfig pc;
  est::PathChirp chirp(pc);
  EXPECT_DOUBLE_EQ(chirp.analyze_chirp({1.0}, {}, {}), 0.0);
}

TEST(PathChirp, RejectsBadConfig) {
  est::PathChirpConfig bad;
  bad.spread_factor = 0.9;
  EXPECT_THROW(est::PathChirp{bad}, std::invalid_argument);
}

// -------------------------------------------------------------- IGI/PTR ---

TEST(IgiPtr, BothFormulasRecoverAvailBwOnCbr) {
  auto sc = cbr_scenario();
  est::IgiPtrConfig ic;
  ic.tight_capacity_bps = 50e6;
  est::IgiPtr igi(ic, est::IgiPtrFormula::kIgi);
  auto e = igi.estimate(sc.session());
  ASSERT_TRUE(e.valid) << e.detail;
  EXPECT_NEAR(igi.last_ptr_bps(), 25e6, 6e6);
  EXPECT_NEAR(igi.last_igi_bps(), 25e6, 8e6);
  EXPECT_GT(igi.trains_used(), 0u);
}

TEST(IgiPtr, PtrFlavorReportsPtr) {
  auto sc = cbr_scenario(9);
  est::IgiPtrConfig ic;
  ic.tight_capacity_bps = 50e6;
  est::IgiPtr ptr(ic, est::IgiPtrFormula::kPtr);
  auto e = ptr.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_DOUBLE_EQ(e.point_bps(), ptr.last_ptr_bps());
  EXPECT_EQ(ptr.name(), "ptr");
  EXPECT_EQ(ptr.probing_class(), est::ProbingClass::kIterative);
}

TEST(IgiPtr, ClassificationMatchesPaper) {
  est::IgiPtrConfig ic;
  ic.tight_capacity_bps = 50e6;
  est::IgiPtr igi(ic, est::IgiPtrFormula::kIgi);
  EXPECT_EQ(igi.name(), "igi");
  EXPECT_EQ(igi.probing_class(), est::ProbingClass::kDirect);
}

TEST(IgiPtr, RequiresCapacity) {
  est::IgiPtrConfig bad;
  EXPECT_THROW(est::IgiPtr(bad, est::IgiPtrFormula::kIgi), std::invalid_argument);
}

// ---------------------------------------------------------------- BFind ---

TEST(Bfind, FindsAvailBwAndHopOnSingleHop) {
  auto sc = cbr_scenario();
  est::BfindConfig bc;
  bc.initial_rate_bps = 10e6;
  bc.rate_step_bps = 5e6;
  bc.max_rate_bps = 60e6;
  bc.step_duration = 300 * kMillisecond;
  est::Bfind bfind(bc);
  auto e = bfind.estimate(sc.session());
  ASSERT_TRUE(e.valid) << e.detail;
  // BFind flags once its own probing pushes the hop past saturation:
  // probing rate + cross 25 >= 50 happens at rate ~25-35.
  EXPECT_GE(e.point_bps(), 20e6);
  EXPECT_LE(e.point_bps(), 40e6);
  EXPECT_EQ(bfind.flagged_hop(), 0u);
}

TEST(Bfind, FlagsTheTightHopInMultiHop) {
  core::MultiHopConfig mc;
  mc.hop_count = 3;
  mc.loaded_hops = {1};  // only the middle hop is tight
  mc.seed = 5;
  auto sc = core::Scenario::multi_hop(mc);
  est::BfindConfig bc;
  bc.initial_rate_bps = 10e6;
  bc.rate_step_bps = 5e6;
  bc.max_rate_bps = 60e6;
  bc.step_duration = 300 * kMillisecond;
  est::Bfind bfind(bc);
  auto e = bfind.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(bfind.flagged_hop(), 1u);
}

TEST(Bfind, InvalidWhenPathNeverCongests) {
  // Idle 100 Mb/s path probed only up to 30 Mb/s: no queue ever grows.
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = 100e6;
  auto sc = core::Scenario::custom(links, 8);
  est::BfindConfig bc;
  bc.initial_rate_bps = 10e6;
  bc.rate_step_bps = 10e6;
  bc.max_rate_bps = 30e6;
  bc.step_duration = 200 * kMillisecond;
  est::Bfind bfind(bc);
  auto e = bfind.estimate(sc.session());
  EXPECT_FALSE(e.valid);
}

TEST(Bfind, RejectsBadConfig) {
  est::BfindConfig bad;
  bad.rate_step_bps = 0.0;
  EXPECT_THROW(est::Bfind{bad}, std::invalid_argument);
}

// -------------------------------------------------------- estimator API ---

TEST(EstimatorApi, NamesAndClasses) {
  est::PathloadConfig pc;
  est::Pathload pl(pc);
  EXPECT_EQ(pl.name(), "pathload");
  EXPECT_EQ(pl.probing_class(), est::ProbingClass::kIterative);

  est::DirectConfig dc;
  dc.tight_capacity_bps = 50e6;
  est::DirectProber dp(dc);
  EXPECT_EQ(dp.name(), "direct");
  EXPECT_EQ(dp.probing_class(), est::ProbingClass::kDirect);
}

TEST(EstimatorApi, EstimateHelpers) {
  auto p = est::Estimate::point(10e6);
  EXPECT_TRUE(p.valid);
  EXPECT_DOUBLE_EQ(p.low_bps, p.high_bps);
  auto r = est::Estimate::range(1e6, 3e6);
  EXPECT_DOUBLE_EQ(r.point_bps(), 2e6);
  auto bad = est::Estimate::invalid("nope");
  EXPECT_FALSE(bad.valid);
  EXPECT_EQ(bad.detail, "nope");
}

}  // namespace
