// Tests for the hybrid fluid/packet fast path: chunked-vs-scalar generator
// equivalence, exact FluidQueue-vs-DES agreement on one link, and
// scenario-level hybrid-vs-packet ground-truth/OWD agreement.
//
// The full utilization x model sweep is long; by default each axis runs a
// reduced subset.  Set ABW_SLOW=1 (the `slow`-labeled ctest entry, enabled
// with -DABW_SLOW_TESTS=ON) for the complete sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "probe/stream_spec.hpp"
#include "sim/fluid.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival_stream.hpp"
#include "traffic/cbr.hpp"
#include "traffic/fgn_rate.hpp"
#include "traffic/pareto_gaps.hpp"
#include "traffic/pareto_onoff.hpp"
#include "traffic/poisson.hpp"
#include "traffic/trace_replay.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;
using abw::sim::SimTime;

bool slow_tests() { return std::getenv("ABW_SLOW") != nullptr; }

// ------------------------------------------- chunked-vs-scalar arrivals ---

// One (arrival time, size) record, as seen by a link arrival tap.
struct Arrival {
  SimTime t;
  std::uint32_t size;
  bool operator==(const Arrival& o) const { return t == o.t && size == o.size; }
};

enum class GenKind { kCbr, kPoissonFixed, kPoissonTrimodal, kParetoOnOff,
                     kParetoGap, kFgn, kTrace };

std::unique_ptr<traffic::Generator> make_gen(GenKind kind, sim::Simulator& sim,
                                             sim::Path& path,
                                             std::uint64_t seed) {
  stats::Rng rng(seed);
  switch (kind) {
    case GenKind::kCbr:
      return std::make_unique<traffic::CbrGenerator>(
          sim, path, 0, false, 1, std::move(rng), 25e6, 1500);
    case GenKind::kPoissonFixed:
      return std::make_unique<traffic::PoissonGenerator>(
          sim, path, 0, false, 1, std::move(rng), 25e6,
          traffic::SizeDistribution::fixed(1500));
    case GenKind::kPoissonTrimodal:
      return std::make_unique<traffic::PoissonGenerator>(
          sim, path, 0, false, 1, std::move(rng), 25e6,
          traffic::SizeDistribution::internet_mix());
    case GenKind::kParetoOnOff: {
      traffic::ParetoOnOffConfig oc;
      oc.mean_rate_bps = 25e6;
      oc.peak_rate_bps = 50e6;
      return std::make_unique<traffic::ParetoOnOffGenerator>(
          sim, path, 0, false, 1, std::move(rng), oc);
    }
    case GenKind::kParetoGap:
      return std::make_unique<traffic::ParetoGapGenerator>(
          sim, path, 0, false, 1, std::move(rng), 25e6, 1500);
    case GenKind::kFgn: {
      traffic::FgnRateConfig fc;
      fc.mean_rate_bps = 25e6;
      return std::make_unique<traffic::FgnRateGenerator>(
          sim, path, 0, false, 1, std::move(rng), fc);
    }
    case GenKind::kTrace: {
      // A deterministic recorded workload (bursty gaps, trimodal sizes,
      // a few pre-t0 records to exercise the emit-at-t0 clamp).  The
      // TraceGenerator override of fill() must reproduce the base
      // consumption bit-exactly.
      std::vector<traffic::ReplayRecord> recs;
      SimTime t = 50 * kMillisecond;  // before the test's t0 = 100 ms
      for (int i = 0; i < 4000; ++i) {
        t += sim::from_seconds(rng.exponential(0.0004));
        std::uint32_t size = i % 3 == 0 ? 40u : (i % 3 == 1 ? 576u : 1500u);
        recs.push_back({t, size});
      }
      return std::make_unique<traffic::TraceGenerator>(sim, path, 0, false, 1,
                                                       std::move(recs));
    }
  }
  throw std::logic_error("unknown kind");
}

// A path whose single fat link never queues, so tap arrival times equal
// injection times.
sim::LinkConfig tap_link() {
  sim::LinkConfig lc;
  lc.capacity_bps = 10e9;
  lc.propagation_delay = 0;
  return lc;
}

class ChunkedEquivalence : public ::testing::TestWithParam<GenKind> {};

TEST_P(ChunkedEquivalence, FillMatchesSelfScheduledPath) {
  const SimTime t0 = 100 * kMillisecond;
  const SimTime t1 = 2 * kSecond;
  const std::uint64_t seed = 77;

  // Legacy: self-scheduling generator, arrivals recorded by the link tap.
  sim::Simulator sim_a;
  sim::Path path_a(sim_a, {tap_link()});
  sim::CountingSink sink_a;
  path_a.set_receiver(&sink_a);
  std::vector<Arrival> legacy;
  path_a.link(0).set_arrival_tap([&](const sim::Packet& p, SimTime now) {
    legacy.push_back({now, p.size_bytes});
  });
  auto gen_a = make_gen(GetParam(), sim_a, path_a, seed);
  gen_a->start(t0, t1);
  sim_a.run_until(t1 + kSecond);

  // Pull: same generator type and seed through the chunked API.
  sim::Simulator sim_b;
  sim::Path path_b(sim_b, {tap_link()});
  auto gen_b = make_gen(GetParam(), sim_b, path_b, seed);
  gen_b->begin_stream(t0, t1);
  traffic::ArrivalChunk chunk;
  std::vector<Arrival> pulled;
  while (!gen_b->stream_done()) {
    chunk.clear();
    gen_b->fill(chunk, 64);
    for (std::size_t i = 0; i < chunk.size(); ++i)
      pulled.push_back({chunk.times[i], chunk.sizes[i]});
  }

  ASSERT_GT(legacy.size(), 100u);
  ASSERT_EQ(legacy.size(), pulled.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(legacy[i].t, pulled[i].t) << "arrival " << i;
    ASSERT_EQ(legacy[i].size, pulled[i].size) << "arrival " << i;
  }
  EXPECT_EQ(gen_a->packets_sent(), gen_b->packets_sent());
  EXPECT_EQ(gen_a->bytes_sent(), gen_b->bytes_sent());
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ChunkedEquivalence,
                         ::testing::Values(GenKind::kCbr,
                                           GenKind::kPoissonFixed,
                                           GenKind::kPoissonTrimodal,
                                           GenKind::kParetoOnOff,
                                           GenKind::kParetoGap,
                                           GenKind::kFgn,
                                           GenKind::kTrace));

TEST(ChunkedApi, StartAndBeginStreamAreExclusive) {
  sim::Simulator sim;
  sim::Path path(sim, {tap_link()});
  auto g1 = make_gen(GenKind::kPoissonFixed, sim, path, 1);
  g1->start(0, kSecond);
  EXPECT_THROW(g1->begin_stream(0, kSecond), std::logic_error);
  auto g2 = make_gen(GenKind::kPoissonFixed, sim, path, 1);
  g2->begin_stream(0, kSecond);
  EXPECT_THROW(g2->start(0, kSecond), std::logic_error);
  traffic::ArrivalChunk c;
  auto g3 = make_gen(GenKind::kPoissonFixed, sim, path, 1);
  EXPECT_THROW(g3->fill(c, 8), std::logic_error);
}

// ------------------------------------------------- FluidQueue vs DES ------

// Feeds the identical arrival sequence through a real event-driven link
// and through a FluidQueue, then requires the utilization meter and the
// link counters to agree exactly.
void check_fluid_matches_des(GenKind kind, std::size_t queue_limit_bytes) {
  const SimTime t0 = 0;
  const SimTime t1 = 5 * kSecond;
  const std::uint64_t seed = 1234;

  sim::LinkConfig lc;
  lc.capacity_bps = 30e6;  // ~0.83 utilization at 25 Mb/s offered
  lc.propagation_delay = 0;
  lc.queue_limit_bytes = queue_limit_bytes;

  // Reference: plain DES.
  sim::Simulator sim_a;
  sim::Path path_a(sim_a, {lc});
  sim::CountingSink sink_a;
  path_a.set_receiver(&sink_a);
  auto gen_a = make_gen(kind, sim_a, path_a, seed);
  gen_a->start(t0, t1);
  sim_a.run_until(t1 + kSecond);  // drain

  // Fluid: same arrivals absorbed in chunks.
  sim::Simulator sim_b;
  sim::Path path_b(sim_b, {lc});
  sim::Link& link_b = path_b.link(0);
  sim::FluidQueue& fq = link_b.enable_fluid();
  fq.reset(t0);
  auto gen_b = make_gen(kind, sim_b, path_b, seed);
  gen_b->begin_stream(t0, t1);
  traffic::ArrivalChunk chunk;
  while (!gen_b->stream_done()) {
    chunk.clear();
    if (gen_b->fill(chunk, 256) == 0) break;
    fq.absorb(chunk.times.data(), chunk.sizes.data(), chunk.size(),
              chunk.times.back());
  }
  fq.advance(t1 + kSecond);

  const sim::LinkStats& a = path_a.link(0).stats();
  const sim::LinkStats& b = link_b.stats();
  EXPECT_EQ(a.packets_in, b.packets_in);
  EXPECT_EQ(a.bytes_in, b.bytes_in);
  EXPECT_EQ(a.packets_out, b.packets_out);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);

  // Utilization agrees exactly on every sub-window (identical busy
  // intervals -> identical prefix sums).
  for (SimTime w = 0; w + 500 * kMillisecond <= t1; w += 500 * kMillisecond) {
    double ua = path_a.link(0).meter().utilization(w, w + 500 * kMillisecond);
    double ub = link_b.meter().utilization(w, w + 500 * kMillisecond);
    EXPECT_DOUBLE_EQ(ua, ub) << "window at " << w;
  }
}

TEST(FluidQueue, MatchesDesExactlyPoisson) {
  check_fluid_matches_des(GenKind::kPoissonFixed, 2 << 20);
}

TEST(FluidQueue, MatchesDesExactlyCbr) {
  check_fluid_matches_des(GenKind::kCbr, 2 << 20);
}

TEST(FluidQueue, MatchesDesExactlyParetoOnOff) {
  check_fluid_matches_des(GenKind::kParetoOnOff, 2 << 20);
}

TEST(FluidQueue, MatchesDesExactlyTrace) {
  check_fluid_matches_des(GenKind::kTrace, 2 << 20);
}

TEST(FluidQueue, MatchesDesDropsWithTinyQueue) {
  // 6 kB queue at 0.83 utilization forces frequent drop-tail decisions;
  // fluid and DES must make the identical ones.
  check_fluid_matches_des(GenKind::kParetoOnOff, 6 * 1024);
}

TEST(FluidQueue, RejectsUnsupportedLinkFeatures) {
  sim::Simulator sim;
  sim::LinkConfig red = tap_link();
  red.discipline = sim::QueueDiscipline::kRed;
  sim::Path p1(sim, {red});
  EXPECT_THROW(p1.link(0).enable_fluid(), std::logic_error);

  sim::LinkConfig lossy = tap_link();
  lossy.random_loss_prob = 0.01;
  sim::Path p2(sim, {lossy});
  EXPECT_THROW(p2.link(0).enable_fluid(), std::logic_error);

  sim::Path p3(sim, {tap_link()});
  p3.link(0).enable_fluid();
  EXPECT_THROW(p3.link(0).enable_fluid(), std::logic_error);
}

// ------------------------------------------- hybrid scenario agreement ----

core::SingleHopConfig hybrid_cfg(core::CrossModel model, double util,
                                 sim::SimMode mode) {
  core::SingleHopConfig cfg;
  cfg.model = model;
  cfg.mode = mode;
  cfg.cross_rate_bps = util * cfg.capacity_bps;
  cfg.traffic_horizon = 40 * kSecond;
  cfg.seed = 99;
  return cfg;
}

// Without probes the hybrid run IS the packet run, integrated in batch:
// ground truth must agree to floating-point noise.
TEST(HybridScenario, UnprobedGroundTruthNearExact) {
  std::vector<double> utils = slow_tests()
      ? std::vector<double>{0.2, 0.3, 0.5, 0.7, 0.8, 0.9}
      : std::vector<double>{0.3, 0.8};
  for (core::CrossModel model : {core::CrossModel::kCbr,
                                 core::CrossModel::kPoisson,
                                 core::CrossModel::kParetoOnOff}) {
    for (double util : utils) {
      auto pkt = core::Scenario::single_hop(
          hybrid_cfg(model, util, sim::SimMode::kPacket));
      auto hyb = core::Scenario::single_hop(
          hybrid_cfg(model, util, sim::SimMode::kHybrid));
      const SimTime end = 12 * kSecond;
      pkt.simulator().run_until(end);
      hyb.simulator().run_until(end);
      double gp = pkt.ground_truth(2 * kSecond, end);
      double gh = hyb.ground_truth(2 * kSecond, end);
      EXPECT_NEAR(gh, gp, gp * 1e-9)
          << core::to_string(model) << " util " << util;
    }
  }
}

// Trace replay through Scenario::add_cross_source: the same recorded
// workload drives a packet-mode and a hybrid-mode scenario; the ground
// truth (and so every meter-derived series) must agree to floating-point
// noise — the fig1-style bench path, end to end.
TEST(HybridScenario, TraceReplayAgreement) {
  std::vector<traffic::ReplayRecord> recs;
  {
    stats::Rng r(7);
    SimTime t = 0;
    for (int i = 0; i < 20000; ++i) {
      t += sim::from_seconds(r.exponential(0.0004));
      std::uint32_t size = i % 3 == 0 ? 40u : (i % 3 == 1 ? 576u : 1500u);
      recs.push_back({t, size});
    }
  }
  const SimTime end = 8 * kSecond;
  double truth[2] = {0.0, 0.0};
  std::uint64_t bytes_in[2] = {0, 0};
  int mi = 0;
  for (sim::SimMode mode : {sim::SimMode::kPacket, sim::SimMode::kHybrid}) {
    sim::LinkConfig lc;
    lc.capacity_bps = 30e6;
    lc.propagation_delay = kMillisecond;
    auto sc = core::Scenario::custom({lc}, /*seed=*/1);
    sc.add_cross_source(
        std::make_unique<traffic::TraceGenerator>(sc.simulator(), sc.path(), 0,
                                                  false, 1000, recs),
        0, false, 1000, mode, end + kSecond);
    sc.simulator().run_until(end);
    truth[mi] = sc.ground_truth(kSecond, end);
    sc.path().sync_hybrid(end);
    bytes_in[mi] = sc.path().link(0).stats().bytes_in;
    ++mi;
  }
  EXPECT_NEAR(truth[1], truth[0], truth[0] * 1e-9);
  EXPECT_EQ(bytes_in[1], bytes_in[0]);
}

// With probing, windows bracket each stream: ground truth within 2%, mean
// probe OWD within 5% of the packet-mode run (same seed, same arrivals —
// differences come only from event ties at window edges).
TEST(HybridScenario, ProbedAgreementSweep) {
  std::vector<double> utils = slow_tests()
      ? std::vector<double>{0.2, 0.3, 0.5, 0.7, 0.8, 0.9}
      : std::vector<double>{0.3, 0.8};
  for (core::CrossModel model : {core::CrossModel::kCbr,
                                 core::CrossModel::kPoisson,
                                 core::CrossModel::kParetoOnOff}) {
    for (double util : utils) {
      double owd[2] = {0.0, 0.0};
      double truth[2] = {0.0, 0.0};
      SimTime end[2] = {0, 0};
      int mi = 0;
      for (sim::SimMode mode : {sim::SimMode::kPacket, sim::SimMode::kHybrid}) {
        auto sc = core::Scenario::single_hop(hybrid_cfg(model, util, mode));
        probe::StreamSpec spec = probe::StreamSpec::periodic(10e6, 1000, 20);
        double sum = 0.0;
        std::size_t n = 0;
        for (int s = 0; s < 10; ++s) {
          probe::StreamResult r = sc.session().send_stream_now(spec);
          for (const auto& p : r.packets) {
            if (p.lost) continue;
            sum += sim::to_seconds(p.received - p.sent);
            ++n;
          }
          sc.simulator().run_until(sc.simulator().now() + 200 * kMillisecond);
        }
        ASSERT_GT(n, 0u);
        owd[mi] = sum / static_cast<double>(n);
        end[mi] = sc.simulator().now();
        truth[mi] = sc.ground_truth(2 * kSecond, end[mi]);
        ++mi;
      }
      EXPECT_EQ(end[0], end[1]);
      EXPECT_NEAR(truth[1], truth[0], truth[0] * 0.02)
          << core::to_string(model) << " util " << util;
      EXPECT_NEAR(owd[1], owd[0], owd[0] * 0.05)
          << core::to_string(model) << " util " << util;
    }
  }
}

TEST(HybridScenario, MultiHopProbedAgreement) {
  double truth[2];
  int mi = 0;
  for (sim::SimMode mode : {sim::SimMode::kPacket, sim::SimMode::kHybrid}) {
    core::MultiHopConfig mc;
    mc.mode = mode;
    mc.traffic_horizon = 30 * kSecond;
    mc.seed = 5;
    auto sc = core::Scenario::multi_hop(mc);
    probe::StreamSpec spec = probe::StreamSpec::periodic(10e6, 1000, 20);
    for (int s = 0; s < 5; ++s) {
      sc.session().send_stream_now(spec);
      sc.simulator().run_until(sc.simulator().now() + 300 * kMillisecond);
    }
    truth[mi++] = sc.ground_truth(2 * kSecond, sc.simulator().now());
  }
  EXPECT_NEAR(truth[1], truth[0], truth[0] * 0.02);
}

// A discrete packet reaching a fluid link outside any announced window
// triggers the safety-net conversion instead of corrupting accounting.
TEST(HybridScenario, SafetyNetConvertsOnUnexpectedPacket) {
  auto sc = core::Scenario::single_hop(
      hybrid_cfg(core::CrossModel::kPoisson, 0.5, sim::SimMode::kHybrid));
  sim::Simulator& sim = sc.simulator();
  sim::Path& path = sc.path();
  SimTime when = sim.now() + 50 * kMillisecond;
  sim.at(when, [&] {
    sim::Packet pkt;
    pkt.id = sim.next_packet_id();
    pkt.type = sim::PacketType::kProbe;
    pkt.measurement = true;
    pkt.size_bytes = 1000;
    pkt.send_time = sim.now();
    path.inject(0, pkt);  // no open_packet_window bracket
  });
  sim.run_until(when + kSecond);
  sim.run_until(10 * kSecond);
  double truth = sc.ground_truth(2 * kSecond, 10 * kSecond);
  EXPECT_NEAR(truth, 25e6, 2.5e6);
  EXPECT_GE(path.link(0).stats().packets_in, 1u);
}

// Hybrid runs are as repeatable as packet runs: same seed, same results.
TEST(HybridScenario, DeterministicAcrossRuns) {
  double truth[2];
  std::uint64_t received[2];
  for (int run = 0; run < 2; ++run) {
    auto sc = core::Scenario::single_hop(
        hybrid_cfg(core::CrossModel::kParetoOnOff, 0.7, sim::SimMode::kHybrid));
    probe::StreamSpec spec = probe::StreamSpec::periodic(20e6, 1200, 30);
    std::uint64_t got = 0;
    for (int s = 0; s < 5; ++s) {
      probe::StreamResult r = sc.session().send_stream_now(spec);
      got += r.packets.size() - r.lost_count();
      sc.simulator().run_until(sc.simulator().now() + 100 * kMillisecond);
    }
    truth[run] = sc.ground_truth(2 * kSecond, sc.simulator().now());
    received[run] = got;
  }
  EXPECT_DOUBLE_EQ(truth[0], truth[1]);
  EXPECT_EQ(received[0], received[1]);
}

}  // namespace
