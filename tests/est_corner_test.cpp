// Estimator corner cases and robustness: brackets that miss the avail-bw,
// probing rates above capacity, idle and saturated paths, random loss,
// and cross-estimator session reuse.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "est/direct.hpp"
#include "est/pathchirp.hpp"
#include "est/pathload.hpp"
#include "est/spruce.hpp"
#include "est/topp.hpp"
#include "traffic/cbr.hpp"

namespace {

using namespace abw;
using abw::sim::kSecond;

// ------------------------------------------------ bracket misplacement ---

TEST(Corner, PathloadBracketEntirelyBelowAvailBw) {
  // A = 25; search in [2, 15]: every fleet passes clean, so the search
  // collapses to the top of the bracket — the tool can only report
  // "A >= ~15", and must not fabricate a mid-bracket estimate.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 15e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  if (e.valid) {
    EXPECT_GT(e.high_bps, 13e6);
  }
}

TEST(Corner, PathloadBracketEntirelyAboveAvailBw) {
  // A = 5 (45 Mb/s of cross); search in [30, 49]: every fleet congests,
  // so the search collapses to the bottom of the bracket.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_rate_bps = 45e6;
  auto sc = core::Scenario::single_hop(cfg);
  est::PathloadConfig pc;
  pc.min_rate_bps = 30e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  if (e.valid) {
    EXPECT_LT(e.low_bps, 32e6);
  }
}

// ----------------------------------------------------- saturated paths ---

TEST(Corner, NearSaturatedPathStillEstimable) {
  // 94% utilization: A = 3 Mb/s.  Iterative probing must find it.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_rate_bps = 47e6;
  auto sc = core::Scenario::single_hop(cfg);
  est::PathloadConfig pc;
  pc.min_rate_bps = 0.5e6;
  pc.max_rate_bps = 20e6;
  pc.resolution_bps = 1e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 3e6, 2.5e6);
}

TEST(Corner, IdlePathEstimatesNearCapacity) {
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = 50e6;
  auto sc = core::Scenario::custom(links, 3);
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49.5e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.high_bps, 45e6);
}

// -------------------------------------------------------- over-driving ---

TEST(Corner, DirectProbingAtRatesNearCapacity) {
  // Ri = 0.98 * Ct: streams arrive as fast as the link can carry them;
  // Eq. 9 must still recover A (the regime Spruce operates in).
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 49e6;
  dc.stream_count = 10;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 3e6);
}

TEST(Corner, ProbingAboveCapacityDrainsAtCapacity) {
  // Input rate above the narrow capacity: Ro ~= Ct - Rc regardless of Ri.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  auto res = sc.session().send_stream_now(
      probe::StreamSpec::periodic(80e6, 1500, 200));
  // The stream floods a 50 Mb/s link while CBR cross claims 25: probe
  // share is bounded by C - Rc ... C depending on queue contention.
  EXPECT_LT(res.output_rate_bps(), 52e6);
  EXPECT_GT(res.output_rate_bps(), 20e6);
}

// ------------------------------------------------------ adaptive rate ---

TEST(Corner, AdaptiveDirectRecoversFromBadInitialRate) {
  // Start probing at 6 Mb/s — far below A = 25, so the first streams
  // yield nothing; the Delphi-style adaptation must climb above A and
  // then converge.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 6e6;
  dc.stream_count = 30;
  dc.adaptive = true;
  est::DirectProber prober(dc);
  auto e = prober.estimate(sc.session());
  ASSERT_TRUE(e.valid) << e.detail;
  EXPECT_NEAR(e.point_bps(), 25e6, 3e6);
  // The adapted operating rate sits between A and Ct.
  EXPECT_GT(prober.current_rate_bps(), 25e6);
  EXPECT_LT(prober.current_rate_bps(), 50e6);
}

TEST(Corner, NonAdaptiveWithSameBadRateStaysInvalid) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.input_rate_bps = 6e6;
  dc.stream_count = 10;
  est::DirectProber prober(dc);
  EXPECT_FALSE(prober.estimate(sc.session()).valid);
}

// ------------------------------------------------------- lossy paths ---

TEST(Corner, PathloadSurvivesRandomLoss) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.random_loss_prob = 0.01;
  auto sc = core::Scenario::single_hop(cfg);
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  // 1% random loss biases Pathload low (lossy streams read as congestion)
  // but must not produce nonsense.
  EXPECT_GT(e.point_bps(), 10e6);
  EXPECT_LT(e.point_bps(), 35e6);
}

TEST(Corner, SpruceSurvivesRandomLoss) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.random_loss_prob = 0.02;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  spc.pair_count = 200;
  est::Spruce spruce(spc, sc.rng().fork());
  auto e = spruce.estimate(sc.session());
  ASSERT_TRUE(e.valid);  // pairs with a lost packet are skipped
  EXPECT_NEAR(e.point_bps(), 25e6, 5e6);
}

// ------------------------------------------------------ session reuse ---

TEST(Corner, SequentialEstimatorsShareOneSession) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);

  est::DirectConfig dc;
  dc.tight_capacity_bps = cfg.capacity_bps;
  dc.stream_count = 5;
  est::DirectProber direct(dc);
  auto e1 = direct.estimate(sc.session());

  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e2 = pl.estimate(sc.session());

  ASSERT_TRUE(e1.valid);
  ASSERT_TRUE(e2.valid);
  EXPECT_NEAR(e1.point_bps(), 25e6, 3e6);
  EXPECT_NEAR(e2.point_bps(), 25e6, 4e6);
  // Costs accumulate monotonically across tools.
  EXPECT_GT(e2.cost.packets, e1.cost.packets);
}

// -------------------------------------------------- tiny-queue regime ---

TEST(Corner, TinyQueueTurnsCongestionIntoLoss) {
  // Six packets of buffer: congestion shows up as loss, not as an OWD
  // trend (the delay saturates at the queue cap).  Pathload's >10%-loss
  // rule must still call the over-avail-bw rate "above".
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.queue_limit_bytes = 6 * 1500;
  auto sc = core::Scenario::single_hop(cfg);
  auto res = sc.session().send_stream_now(
      probe::StreamSpec::periodic(45e6, 1500, 300));
  EXPECT_GT(res.lost_count(), 0u);
  est::PathloadConfig pc;
  est::Pathload pl(pc);
  EXPECT_EQ(pl.probe_fleet(sc.transport(), 48e6), est::FleetVerdict::kAboveAvailBw);
  EXPECT_EQ(pl.probe_fleet(sc.transport(), 10e6), est::FleetVerdict::kBelowAvailBw);
}

// ------------------------------------------------- pathchirp edge data ---

TEST(Corner, PathChirpHandlesDegenerateSignatures) {
  est::PathChirpConfig pc;
  est::PathChirp chirp(pc);
  // Mismatched sizes are rejected as unusable, not UB.
  EXPECT_DOUBLE_EQ(chirp.analyze_chirp({1, 2, 3}, {1e6}, {0.1}), 0.0);
  // All-equal OWDs: no queueing, estimate = top rate.
  std::vector<double> owds(10, 0.01);
  std::vector<double> rates(9), gaps(9);
  for (int i = 0; i < 9; ++i) {
    rates[i] = 1e6 * (i + 1);
    gaps[i] = 0.001;
  }
  EXPECT_DOUBLE_EQ(chirp.analyze_chirp(owds, rates, gaps), 9e6);
}

TEST(Corner, ToppNarrowSweepIsInvalidNotWrong) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::ToppConfig tc;
  tc.min_rate_bps = 2e6;
  tc.max_rate_bps = 8e6;  // entirely below A: no turning point to find
  tc.rate_step_bps = 2e6;
  est::Topp topp(tc, sc.rng().fork());
  auto e = topp.estimate(sc.session());
  // Either invalid, or the fallback pinned at the sweep ceiling.
  if (e.valid) {
    EXPECT_GE(e.point_bps(), 6e6);
  }
}

}  // namespace
