// Tests for the TCP Reno substrate: window-limited throughput, congestion
// response to losses and competing traffic, short-flow generation — the
// mechanics behind the paper's Fig. 7 pitfall.
#include <gtest/gtest.h>

#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "tcp/flows.hpp"
#include "tcp/tcp.hpp"
#include "traffic/cbr.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

struct TcpFixture {
  sim::Simulator simu;
  sim::Path path;
  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;

  explicit TcpFixture(double capacity = 50e6, std::size_t qlimit = 128 * 1500)
      : path(simu, {make_cfg(capacity, qlimit)}) {
    demux.register_handler(sim::PacketType::kTcpData, &hub);
    path.set_receiver(&demux);
  }
  static sim::LinkConfig make_cfg(double c, std::size_t q) {
    sim::LinkConfig cfg;
    cfg.capacity_bps = c;
    cfg.propagation_delay = 5 * kMillisecond;
    cfg.queue_limit_bytes = q;
    return cfg;
  }
};

TEST(Tcp, CompletesABoundedTransfer) {
  TcpFixture f;
  tcp::TcpConfig cfg;
  cfg.bytes_to_send = 100 * 1460;
  tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
  bool done = false;
  conn.set_on_complete([&] { done = true; });
  conn.start(0);
  f.simu.run_until(10 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_TRUE(conn.completed());
  EXPECT_EQ(conn.acked_bytes(), 100u * 1460u);
}

TEST(Tcp, WindowLimitedThroughputIsWrOverRtt) {
  // RTT = 2*(5 ms prop) + reverse 5 ms + tx times; with Wr = 8 segments
  // the connection is window-limited: throughput ~ Wr * MSS * 8 / RTT.
  TcpFixture f(100e6);
  tcp::TcpConfig cfg;
  cfg.receiver_window = 8;
  cfg.reverse_delay = 5 * kMillisecond;
  tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
  conn.start(0);
  f.simu.run_until(20 * kSecond);
  double rtt = sim::to_seconds(2 * (5 * kMillisecond)) +
               sim::to_seconds(sim::transmission_time(1500, 100e6));
  double predicted = 8.0 * 1460.0 * 8.0 / rtt;
  EXPECT_NEAR(conn.throughput_bps(f.simu.now()), predicted, predicted * 0.1);
}

TEST(Tcp, LargerWindowGivesMoreThroughputUntilCapacity) {
  auto run = [](std::uint32_t wr) {
    TcpFixture f(20e6);
    tcp::TcpConfig cfg;
    cfg.receiver_window = wr;
    tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
    conn.start(0);
    f.simu.run_until(15 * kSecond);
    return conn.throughput_bps(f.simu.now());
  };
  double t4 = run(4), t16 = run(16), t256 = run(256);
  EXPECT_LT(t4, t16);
  EXPECT_LT(t16, t256 + 1e6);
  EXPECT_LT(t256, 20e6);          // can't beat the link
  EXPECT_GT(t256, 20e6 * 0.75);   // but should nearly fill it
}

TEST(Tcp, RecoversFromLossAndKeepsGoing) {
  // Small queue forces drops once cwnd grows; the connection must keep
  // making progress through fast retransmit / RTO.
  TcpFixture f(10e6, 8 * 1500);
  tcp::TcpConfig cfg;
  cfg.receiver_window = 64;
  tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
  conn.start(0);
  f.simu.run_until(20 * kSecond);
  EXPECT_GT(conn.retransmits(), 0u);
  EXPECT_GT(conn.throughput_bps(f.simu.now()), 10e6 * 0.5);
  EXPECT_GT(conn.acked_bytes(), 0u);
}

TEST(Tcp, SharesFairlyWithItself) {
  TcpFixture f(20e6, 64 * 1500);
  tcp::TcpConfig cfg;
  cfg.receiver_window = 256;
  tcp::TcpConnection a(f.simu, f.path, f.hub, 1, cfg);
  tcp::TcpConnection b(f.simu, f.path, f.hub, 2, cfg);
  a.start(0);
  b.start(100 * kMillisecond);
  f.simu.run_until(30 * kSecond);
  double ta = a.throughput_bps(f.simu.now());
  double tb = b.throughput_bps(f.simu.now());
  EXPECT_NEAR(ta + tb, 20e6, 20e6 * 0.2);
  EXPECT_GT(std::min(ta, tb) / std::max(ta, tb), 0.4);  // coarse fairness
}

TEST(Tcp, BacksOffUnderCbrCongestion) {
  // CBR eats 15 of 20 Mb/s; TCP should settle near the 5 Mb/s remainder,
  // well below its window-permitted rate.
  TcpFixture f(20e6, 64 * 1500);
  traffic::CbrGenerator cross(f.simu, f.path, 0, false, 99, stats::Rng(4), 15e6,
                              1500);
  cross.start(0, 60 * kSecond);
  tcp::TcpConfig cfg;
  cfg.receiver_window = 256;
  tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
  conn.start(kSecond);
  f.simu.run_until(30 * kSecond);
  double rate = conn.throughput_bps(f.simu.now());
  EXPECT_LT(rate, 9e6);
  EXPECT_GT(rate, 1e6);
}

TEST(Tcp, RejectsBadConfig) {
  TcpFixture f;
  tcp::TcpConfig bad;
  bad.receiver_window = 0;
  EXPECT_THROW(tcp::TcpConnection(f.simu, f.path, f.hub, 1, bad),
               std::invalid_argument);
  bad = {};
  bad.mss_bytes = 0;
  EXPECT_THROW(tcp::TcpConnection(f.simu, f.path, f.hub, 2, bad),
               std::invalid_argument);
}

TEST(Tcp, HubRejectsDuplicateFlowIds) {
  TcpFixture f;
  tcp::TcpConfig cfg;
  tcp::TcpConnection a(f.simu, f.path, f.hub, 1, cfg);
  EXPECT_THROW(tcp::TcpConnection(f.simu, f.path, f.hub, 1, cfg),
               std::logic_error);
}

TEST(Tcp, HubIgnoresUnknownFlows) {
  TcpFixture f;
  sim::Packet pkt;
  pkt.type = sim::PacketType::kTcpData;
  pkt.flow_id = 424242;
  EXPECT_NO_THROW(f.hub.handle(pkt));
  EXPECT_NO_THROW(f.hub.deliver_ack(424242, 5));
}

TEST(Tcp, StartTwiceThrows) {
  TcpFixture f;
  tcp::TcpConfig cfg;
  tcp::TcpConnection conn(f.simu, f.path, f.hub, 1, cfg);
  conn.start(0);
  EXPECT_THROW(conn.start(kSecond), std::logic_error);
}

// -------------------------------------------------------------- flows ---

TEST(PersistentFlowSet, AggregateSaturatesSmallWindows) {
  TcpFixture f(50e6);
  tcp::TcpConfig cfg;
  cfg.receiver_window = 6;
  tcp::PersistentFlowSet set(f.simu, f.path, f.hub, 10, 4, cfg);
  EXPECT_EQ(set.size(), 4u);
  stats::Rng rng(5);
  set.start(0, kSecond, rng);
  f.simu.run_until(20 * kSecond);
  double agg = set.aggregate_throughput_bps(f.simu.now());
  EXPECT_GT(agg, 1e6);
  EXPECT_LT(agg, 50e6);
}

TEST(ShortFlowGenerator, SpawnsAndCompletesFlows) {
  TcpFixture f(50e6);
  tcp::ShortFlowConfig cfg;
  cfg.flow_arrival_rate = 30.0;
  cfg.mean_flow_bytes = 30e3;
  tcp::ShortFlowGenerator gen(f.simu, f.path, f.hub, 100, cfg, stats::Rng(6));
  gen.start(0, 10 * kSecond);
  f.simu.run_until(15 * kSecond);
  EXPECT_GT(gen.flows_started(), 200u);
  EXPECT_GT(gen.flows_completed(), gen.flows_started() * 3 / 4);
  EXPECT_GT(gen.total_acked_bytes(), 0u);
}

TEST(ShortFlowGenerator, RespectsActiveWindow) {
  TcpFixture f(50e6);
  tcp::ShortFlowConfig cfg;
  cfg.flow_arrival_rate = 50.0;
  tcp::ShortFlowGenerator gen(f.simu, f.path, f.hub, 100, cfg, stats::Rng(6));
  gen.start(0, kSecond);
  f.simu.run_until(5 * kSecond);
  auto started = gen.flows_started();
  EXPECT_GT(started, 20u);
  EXPECT_LT(started, 100u);  // ~50 expected in 1 s
}

TEST(ShortFlowGenerator, RejectsBadConfig) {
  TcpFixture f;
  tcp::ShortFlowConfig bad;
  bad.flow_arrival_rate = 0.0;
  EXPECT_THROW(tcp::ShortFlowGenerator(f.simu, f.path, f.hub, 1, bad,
                                       stats::Rng(1)),
               std::invalid_argument);
}

}  // namespace
