// Cross-module integration tests: every estimator run end-to-end against
// simulated ground truth, and the ten fallacy demonstrations themselves.
// These are the library's "does the whole thing hang together" checks.
#include <gtest/gtest.h>

#include <tuple>

#include "core/fallacies.hpp"
#include "core/scenario.hpp"
#include "est/direct.hpp"
#include "est/igi_ptr.hpp"
#include "est/pathchirp.hpp"
#include "est/pathload.hpp"
#include "est/spruce.hpp"
#include "est/topp.hpp"

namespace {

using namespace abw;
using abw::sim::kSecond;

// Build every tool with comparable configuration against a known path —
// the "same configuration parameters" comparison the paper calls for.
std::vector<std::unique_ptr<est::Estimator>> make_tools(double ct,
                                                        stats::Rng& rng) {
  std::vector<std::unique_ptr<est::Estimator>> tools;
  est::DirectConfig dc;
  dc.tight_capacity_bps = ct;
  dc.input_rate_bps = 0.8 * ct;
  tools.push_back(std::make_unique<est::DirectProber>(dc));

  est::SpruceConfig spc;
  spc.tight_capacity_bps = ct;
  tools.push_back(std::make_unique<est::Spruce>(spc, rng.fork()));

  est::ToppConfig tc;
  tc.min_rate_bps = 0.1 * ct;
  tc.max_rate_bps = 0.96 * ct;
  tc.rate_step_bps = 0.04 * ct;
  tools.push_back(std::make_unique<est::Topp>(tc, rng.fork()));

  est::PathloadConfig pc;
  pc.min_rate_bps = 0.04 * ct;
  pc.max_rate_bps = 0.98 * ct;
  tools.push_back(std::make_unique<est::Pathload>(pc));

  est::PathChirpConfig cc;
  cc.low_rate_bps = 0.08 * ct;
  cc.packets_per_chirp = 20;
  tools.push_back(std::make_unique<est::PathChirp>(cc));

  est::IgiPtrConfig ic;
  ic.tight_capacity_bps = ct;
  tools.push_back(std::make_unique<est::IgiPtr>(ic, est::IgiPtrFormula::kPtr));
  return tools;
}

TEST(AllTools, AgreeOnFluidLikePath) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.seed = 3;
  auto sc = core::Scenario::single_hop(cfg);
  auto tools = make_tools(cfg.capacity_bps, sc.rng());
  for (auto& tool : tools) {
    auto e = tool->estimate(sc.session());
    ASSERT_TRUE(e.valid) << tool->name() << ": " << e.detail;
    EXPECT_NEAR(e.point_bps(), 25e6, 8e6) << tool->name();
  }
}

TEST(AllTools, StayInPhysicalRangeUnderBurstyCross) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kParetoOnOff;
  cfg.seed = 5;
  auto sc = core::Scenario::single_hop(cfg);
  auto tools = make_tools(cfg.capacity_bps, sc.rng());
  for (auto& tool : tools) {
    auto e = tool->estimate(sc.session());
    if (!e.valid) continue;  // bursty paths can defeat individual tools
    EXPECT_GE(e.low_bps, 0.0) << tool->name();
    EXPECT_LE(e.high_bps, cfg.capacity_bps * 1.05) << tool->name();
  }
}

TEST(AllTools, ProbingClassesMatchPaperTaxonomy) {
  stats::Rng rng(1);
  auto tools = make_tools(50e6, rng);
  std::size_t direct = 0, iterative = 0;
  for (auto& t : tools)
    (t->probing_class() == est::ProbingClass::kDirect ? direct : iterative)++;
  EXPECT_EQ(direct, 2u);     // direct prober, spruce
  EXPECT_EQ(iterative, 4u);  // topp, pathload, pathchirp, ptr
}

TEST(AllTools, CostAccountingIsMonotone) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::SpruceConfig spc;
  spc.tight_capacity_bps = cfg.capacity_bps;
  est::Spruce spruce(spc, sc.rng().fork());
  auto before = sc.session().cost().packets;
  auto e = spruce.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.cost.packets - before, 200u);  // 100 pairs
}

TEST(MultiHop, GroundTruthStillMinimum) {
  core::MultiHopConfig mc;
  mc.hop_count = 5;
  mc.loaded_hops = {0, 1, 2, 3, 4};
  mc.seed = 7;
  auto sc = core::Scenario::multi_hop(mc);
  sc.simulator().run_until(12 * kSecond);
  double truth = sc.ground_truth(2 * kSecond, 12 * kSecond);
  EXPECT_NEAR(truth, 25e6, 3e6);
}

TEST(MultiHop, PathloadStillBracketsOnCbr) {
  core::MultiHopConfig mc;
  mc.hop_count = 3;
  mc.loaded_hops = {0, 1, 2};
  mc.model = core::CrossModel::kCbr;
  mc.seed = 9;
  auto sc = core::Scenario::multi_hop(mc);
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 8e6);
}

// --------------------------------------------------- the ten fallacies ---

TEST(Fallacies, TitlesAndKindsCoverAllTen) {
  for (int id = 1; id <= core::kFallacyCount; ++id) {
    EXPECT_FALSE(core::fallacy_title(id).empty());
    (void)core::fallacy_kind(id);
  }
  EXPECT_THROW(core::fallacy_title(0), std::out_of_range);
  EXPECT_THROW(core::fallacy_title(11), std::out_of_range);
  EXPECT_EQ(core::fallacy_kind(3), core::MisconceptionKind::kFallacy);
  EXPECT_EQ(core::fallacy_kind(6), core::MisconceptionKind::kPitfall);
}

// Each demonstration runs and reproduces the paper's qualitative claim —
// across several seeds, so the catalogue is not tuned to one lucky RNG
// stream.
class FallacyRun
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FallacyRun, Demonstrates) {
  auto [id, seed] = GetParam();
  auto r = core::run_fallacy(id, seed);
  EXPECT_EQ(r.id, id);
  EXPECT_FALSE(r.evidence.empty());
  EXPECT_TRUE(r.demonstrated) << "#" << r.id << " " << r.title << " (seed "
                              << seed << ")\n  " << r.evidence;
}

INSTANTIATE_TEST_SUITE_P(
    AllTenBySeeds, FallacyRun,
    ::testing::Combine(::testing::Range(1, 11),
                       ::testing::Values(20260707ull, 777ull, 424242ull)));

}  // namespace
