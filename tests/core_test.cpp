// Tests for the core module: scenario builders and their ground truth,
// the experiment procedures, and the report helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ------------------------------------------------------------ scenario ---

TEST(Scenario, SingleHopGroundTruthMatchesNominal) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  EXPECT_DOUBLE_EQ(sc.nominal_avail_bw(), 25e6);
  sc.simulator().run_until(10 * kSecond);
  double truth = sc.ground_truth(2 * kSecond, 10 * kSecond);
  EXPECT_NEAR(truth, 25e6, 1.5e6);
}

class ScenarioModels : public ::testing::TestWithParam<core::CrossModel> {};

TEST_P(ScenarioModels, LongRunUtilizationOnTarget) {
  core::SingleHopConfig cfg;
  cfg.model = GetParam();
  cfg.seed = 21;
  auto sc = core::Scenario::single_hop(cfg);
  sc.simulator().run_until(62 * kSecond);
  double truth = sc.ground_truth(2 * kSecond, 62 * kSecond);
  // Pareto converges slowest; 12% tolerance over a minute.
  EXPECT_NEAR(truth, 25e6, 25e6 * 0.12) << core::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScenarioModels,
                         ::testing::Values(core::CrossModel::kCbr,
                                           core::CrossModel::kPoisson,
                                           core::CrossModel::kParetoOnOff));

TEST(Scenario, MultiHopLoadsOnlyListedHops) {
  core::MultiHopConfig mc;
  mc.hop_count = 4;
  mc.loaded_hops = {1, 3};
  auto sc = core::Scenario::multi_hop(mc);
  sc.simulator().run_until(10 * kSecond);
  double u1 = sc.path().link(1).meter().utilization(2 * kSecond, 10 * kSecond);
  double u0 = sc.path().link(0).meter().utilization(2 * kSecond, 10 * kSecond);
  EXPECT_NEAR(u1, 0.5, 0.05);
  EXPECT_LT(u0, 0.01);
}

TEST(Scenario, MultiHopCrossIsOneHopPersistent) {
  core::MultiHopConfig mc;
  mc.hop_count = 3;
  mc.loaded_hops = {0};
  auto sc = core::Scenario::multi_hop(mc);
  sc.simulator().run_until(5 * kSecond);
  // Cross packets exit after hop 0: links 1-2 see none.
  EXPECT_GT(sc.path().cross_sink().packets(), 100u);
  EXPECT_EQ(sc.path().link(1).stats().packets_in, 0u);
}

TEST(Scenario, RecentGroundTruth) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  sc.simulator().run_until(5 * kSecond);
  EXPECT_NEAR(sc.recent_ground_truth(kSecond), 25e6, 1e6);
}

TEST(Scenario, RejectsOverloadAndBadHops) {
  core::SingleHopConfig bad;
  bad.cross_rate_bps = bad.capacity_bps;
  EXPECT_THROW(core::Scenario::single_hop(bad), std::invalid_argument);
  core::MultiHopConfig mh;
  mh.hop_count = 2;
  mh.loaded_hops = {5};
  EXPECT_THROW(core::Scenario::multi_hop(mh), std::invalid_argument);
}

TEST(Scenario, CrossModelNames) {
  EXPECT_STREQ(core::to_string(core::CrossModel::kCbr), "CBR");
  EXPECT_STREQ(core::to_string(core::CrossModel::kPoisson), "Poisson");
  EXPECT_STREQ(core::to_string(core::CrossModel::kParetoOnOff), "Pareto ON-OFF");
}

// ----------------------------------------------------------- experiment ---

TEST(Experiment, RatioCurveDropsAboveAvailBw) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  core::RatioCurveConfig rc;
  rc.rates_bps = {15e6, 40e6};
  rc.streams_per_rate = 30;
  auto curve = core::measure_ratio_curve(sc, rc);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].mean_ratio, 1.0, 0.05);
  EXPECT_LT(curve[1].mean_ratio, 0.85);  // fluid predicts 0.77
  EXPECT_EQ(curve[0].streams, 30u);
}

TEST(Experiment, DirectSamplesNearTruthOnCbr) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  auto samples = core::collect_direct_samples(sc, 50e6, 40e6,
                                              50 * kMillisecond, 1500, 20,
                                              20 * kMillisecond);
  ASSERT_EQ(samples.size(), 20u);
  for (double s : samples) EXPECT_NEAR(s, 25e6, 2e6);
}

TEST(Experiment, PairSamplesBoundedByCapacity) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  auto samples = core::collect_pair_samples(sc, 50e6, 1500, 50,
                                            10 * kMillisecond);
  EXPECT_GE(samples.size(), 45u);
  for (double s : samples) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 50e6);
  }
}

TEST(Experiment, CaptureStreamReturnsFullOwdSeries) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  auto res = core::capture_stream(sc, 27e6, 1500, 160);
  EXPECT_EQ(res.packets.size(), 160u);
  EXPECT_EQ(res.owds_seconds().size(), 160u - res.lost_count());
}

// --------------------------------------------------------------- report ---

TEST(Report, MbpsAndPct) {
  EXPECT_EQ(core::mbps(25e6), "25.0 Mbps");
  EXPECT_EQ(core::mbps(1.5e6, 2), "1.50 Mbps");
  EXPECT_EQ(core::pct(0.125), "12.5%");
}

TEST(Report, TableAlignsAndValidates) {
  core::Table t({"a", "bbbb"});
  t.row({"xxxx", "y"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(core::Table({}), std::invalid_argument);
}

TEST(Report, CheckLineFormats) {
  std::ostringstream os;
  core::print_check(os, "claim", "measured", true);
  EXPECT_NE(os.str().find("MATCH"), std::string::npos);
  std::ostringstream os2;
  core::print_check(os2, "claim", "measured", false);
  EXPECT_NE(os2.str().find("MISMATCH"), std::string::npos);
}

TEST(Report, AsciiPlotShape) {
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(i);
  std::string plot = core::ascii_plot(ys, 8, 40);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_EQ(core::ascii_plot({}, 8, 40), "(no data)\n");
}

}  // namespace
