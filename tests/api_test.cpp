// API-surface and edge-case tests that the module-focused suites don't
// reach: result-type invariants, boundary states, accessor semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/monitor.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/schirp.hpp"
#include "probe/session.hpp"
#include "sim/path.hpp"
#include "tcp/flows.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ---------------------------------------------------------- probe cost ---

TEST(Api, ProbeCostElapsedSpansFirstToLastActivity) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  EXPECT_EQ(sc.session().cost().streams, 0u);
  sc.session().send_stream_now(probe::StreamSpec::periodic(10e6, 1500, 10));
  sim::SimTime first = sc.session().cost().first_send;
  sc.simulator().run_until(sc.simulator().now() + kSecond);
  sc.session().send_stream_now(probe::StreamSpec::periodic(10e6, 1500, 10));
  const auto& cost = sc.session().cost();
  EXPECT_EQ(cost.first_send, first);  // unchanged by later streams
  EXPECT_GT(cost.elapsed(), kSecond);
  EXPECT_EQ(cost.streams, 2u);
}

// --------------------------------------------------------- stream specs ---

TEST(Api, StreamSpecDegenerateAccessors) {
  probe::StreamSpec empty;
  EXPECT_DOUBLE_EQ(empty.nominal_rate_bps(), 0.0);
  EXPECT_EQ(empty.span(), 0);
  auto one = probe::StreamSpec::periodic(1e6, 100, 1);
  EXPECT_DOUBLE_EQ(one.nominal_rate_bps(), 0.0);  // needs >= 2 packets
}

TEST(Api, StreamResultAllLost) {
  probe::StreamResult r;
  for (std::uint32_t i = 0; i < 3; ++i) {
    probe::ProbeRecord rec;
    rec.seq = i;
    rec.size_bytes = 100;
    rec.sent = i;
    rec.lost = true;
    r.packets.push_back(rec);
  }
  EXPECT_EQ(r.lost_count(), 3u);
  EXPECT_DOUBLE_EQ(r.output_rate_bps(), 0.0);
  EXPECT_TRUE(r.owds_seconds().empty());
  EXPECT_TRUE(r.relative_owds_ms().empty());
}

// ---------------------------------------------------------------- path ---

TEST(Api, TightLinkPrefersFirstOnTies) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 10e6;
  sim::Path path(simu, {cfg, cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  // Both links idle and identical: the minimum is attained at hop 0.
  EXPECT_EQ(path.tight_link(0, kSecond), 0u);
}

TEST(Api, CrossAvailBwNeverBelowTotalAvailBw) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kPoisson;
  auto sc = core::Scenario::single_hop(cfg);
  sc.session().send_stream_now(probe::StreamSpec::periodic(40e6, 1500, 200));
  sim::SimTime now = sc.simulator().now();
  double total = sc.path().avail_bw(now - kSecond, now);
  double cross_only = sc.path().cross_avail_bw(now - kSecond, now);
  EXPECT_GE(cross_only, total - 1.0);  // excluding load can only raise A
}

// ----------------------------------------------------------------- TCP ---

TEST(Api, TcpCompletionDeliversExactByteCount) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 50e6;
  sim::Path path(simu, {cfg});
  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;
  demux.register_handler(sim::PacketType::kTcpData, &hub);
  path.set_receiver(&demux);
  tcp::TcpConfig tc;
  tc.bytes_to_send = 12345;  // not a multiple of MSS: rounds up to segments
  tcp::TcpConnection conn(simu, path, hub, 1, tc);
  int completions = 0;
  conn.set_on_complete([&] { ++completions; });
  conn.start(0);
  simu.run_until(10 * kSecond);
  EXPECT_TRUE(conn.completed());
  EXPECT_EQ(completions, 1);
  // 12345 / 1460 -> 9 segments of payload acked.
  EXPECT_EQ(conn.acked_bytes(), 9u * 1460u);
}

TEST(Api, PersistentFlowSetRejectsZeroFlows) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  sim::Path path(simu, {cfg});
  tcp::TcpReceiverHub hub;
  tcp::TcpConfig tc;
  EXPECT_THROW(tcp::PersistentFlowSet(simu, path, hub, 1, 0, tc),
               std::invalid_argument);
}

// -------------------------------------------------------------- schirp ---

TEST(Api, SChirpSmoothWindowLargerThanSeriesIsIdentity) {
  std::vector<double> xs = {1, 2, 3};
  EXPECT_EQ(est::SChirp::smooth(xs, 9), xs);
}

// ------------------------------------------------------------ registry ---

TEST(Api, RegistryHonorsRepetitionKnob) {
  core::ToolOptions opts;
  opts.tight_capacity_bps = 50e6;
  opts.min_rate_bps = 2e6;
  opts.max_rate_bps = 48e6;
  opts.repetitions = 7;
  stats::Rng rng(1);
  // Builds fine and the knob reaches the tool (observable via cost).
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  auto spruce = core::make_estimator("spruce", opts, rng);
  auto before = sc.session().cost().packets;
  auto e = spruce->estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(sc.session().cost().packets - before, 14u);  // 7 pairs
}

TEST(Api, RegistryPacketSizeKnob) {
  core::ToolOptions opts;
  opts.tight_capacity_bps = 50e6;
  opts.min_rate_bps = 2e6;
  opts.max_rate_bps = 48e6;
  opts.packet_size = 700;
  stats::Rng rng(2);
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  auto direct = core::make_estimator("direct", opts, rng);
  auto before = sc.session().cost().bytes;
  auto pkts_before = sc.session().cost().packets;
  (void)direct->estimate(sc.session());
  auto bytes = sc.session().cost().bytes - before;
  auto pkts = sc.session().cost().packets - pkts_before;
  EXPECT_EQ(bytes, pkts * 700u);
}

// -------------------------------------------------------------- report ---

TEST(Api, AsciiPlotDownsamplesLongSeries) {
  std::vector<double> ys;
  for (int i = 0; i < 10000; ++i) ys.push_back(std::sin(i * 0.01));
  std::string plot = core::ascii_plot(ys, 10, 60);
  // Every column carries exactly one mark; rows bounded by height.
  std::size_t stars = 0;
  for (char c : plot) stars += c == '*';
  EXPECT_EQ(stars, 60u);
}

TEST(Api, MbpsPrecisionControl) {
  EXPECT_EQ(core::mbps(123456789.0, 0), "123 Mbps");
  EXPECT_EQ(core::mbps(123456789.0, 3), "123.457 Mbps");
}

// ------------------------------------------------------------- monitor ---

TEST(Api, MonitorReadingsAccumulateAcrossRuns) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  core::MonitorConfig mc;
  mc.min_rate_bps = 2e6;
  mc.max_rate_bps = 48e6;
  mc.pathload.streams_per_fleet = 3;
  mc.pathload.packets_per_stream = 50;
  core::AvailBwMonitor monitor(sc, mc);
  auto first = monitor.run_until(5 * kSecond);
  auto second = monitor.run_until(8 * kSecond);
  EXPECT_EQ(monitor.readings().size(), first.size() + second.size());
  EXPECT_GT(second.size(), 0u);
  // Timestamps strictly increase across the whole history.
  for (std::size_t i = 1; i < monitor.readings().size(); ++i)
    EXPECT_GT(monitor.readings()[i].at, monitor.readings()[i - 1].at);
  EXPECT_GT(monitor.current_estimate(), 0.0);
}

TEST(Api, MonitorInitialEstimateSkipsBootstrap) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  core::MonitorConfig mc;
  mc.min_rate_bps = 2e6;
  mc.max_rate_bps = 48e6;
  mc.initial_estimate_bps = 25e6;
  mc.pathload.streams_per_fleet = 3;
  mc.pathload.packets_per_stream = 50;
  core::AvailBwMonitor monitor(sc, mc);
  EXPECT_DOUBLE_EQ(monitor.current_estimate(), 25e6);
  auto readings = monitor.run_until(4 * kSecond);
  ASSERT_GT(readings.size(), 0u);
  EXPECT_NEAR(readings.back().estimate_bps, 25e6, 8e6);
}

// ----------------------------------------------------------- scenarios ---

TEST(Api, CustomScenarioHasNoTrafficHorizon) {
  std::vector<sim::LinkConfig> links(1);
  auto sc = core::Scenario::custom(links, 1);
  EXPECT_EQ(sc.traffic_active_until(), 0);
  EXPECT_DOUBLE_EQ(sc.nominal_avail_bw(), links[0].capacity_bps);
}

TEST(Api, RecentGroundTruthBeforeWarmupFallsBack) {
  core::SingleHopConfig cfg;
  cfg.warmup = 100 * kMillisecond;
  auto sc = core::Scenario::single_hop(cfg);
  // Window longer than elapsed time: falls back to the nominal value.
  EXPECT_DOUBLE_EQ(sc.recent_ground_truth(10 * kSecond), 25e6);
}

}  // namespace
