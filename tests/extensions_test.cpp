// Tests for the extension features: autocorrelation/Ljung-Box, linear
// detrending, trace CSV persistence, random link loss (failure
// injection), unsynchronized receiver clocks, Pareto-gap traffic, the
// S-chirp estimator, and the estimator registry.
#include <gtest/gtest.h>

#include <sstream>

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "est/schirp.hpp"
#include "probe/session.hpp"
#include "stats/acf.hpp"
#include "stats/fgn.hpp"
#include "stats/moments.hpp"
#include "stats/regression.hpp"
#include "stats/trend.hpp"
#include "tcp/tcp.hpp"
#include "trace/synthetic_trace.hpp"
#include "trace/trace_io.hpp"
#include "traffic/pareto_gaps.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ----------------------------------------------------------------- ACF ---

TEST(Acf, WhiteNoiseHasNoCorrelation) {
  stats::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(stats::autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(stats::autocorrelation(xs, 10), 0.0, 0.05);
  EXPECT_FALSE(stats::is_autocorrelated(xs, 10));
}

TEST(Acf, FgnMatchesTheoreticalAcf) {
  stats::Rng rng(2);
  auto xs = stats::generate_fgn(1 << 15, 0.8, rng);
  for (std::size_t lag : {1u, 2u, 4u}) {
    EXPECT_NEAR(stats::autocorrelation(xs, lag),
                stats::fgn_autocovariance(0.8, lag), 0.06)
        << "lag " << lag;
  }
  EXPECT_TRUE(stats::is_autocorrelated(xs, 10));
}

TEST(Acf, LagZeroIsOne) {
  std::vector<double> xs = {1, 5, 2, 8, 3};
  EXPECT_DOUBLE_EQ(stats::autocorrelation(xs, 0), 1.0);
  auto a = stats::acf(xs, 2);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(Acf, DegenerateInputsAreSafe) {
  EXPECT_DOUBLE_EQ(stats::autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(stats::autocorrelation({3.0, 3.0, 3.0}, 1), 0.0);
  EXPECT_THROW(stats::ljung_box({1.0, 2.0}, 5), std::invalid_argument);
}

// ------------------------------------------------------------- detrend ---

TEST(Detrend, RemovesExactLine) {
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(3.0 * i + 7.0);
  auto r = stats::linear_detrend(ys);
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Detrend, PreservesResidualStructure) {
  stats::Rng rng(3);
  std::vector<double> noise, drifted;
  for (int i = 0; i < 2000; ++i) {
    double n = rng.normal();
    noise.push_back(n);
    drifted.push_back(n + 0.01 * i);  // heavy linear drift
  }
  auto recovered = stats::linear_detrend(drifted);
  EXPECT_NEAR(stats::stddev(recovered), stats::stddev(noise), 0.05);
}

TEST(Detrend, ShortSeriesPassThrough) {
  std::vector<double> ys = {5.0};
  EXPECT_EQ(stats::linear_detrend(ys), ys);
}

// ------------------------------------------------------------ trace IO ---

TEST(TraceIo, RoundTripsThroughStreams) {
  stats::Rng rng(4);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);

  std::stringstream ss;
  trace::write_trace_csv(tr, ss);
  trace::PacketTrace back = trace::read_trace_csv(ss);

  ASSERT_EQ(back.size(), tr.size());
  EXPECT_DOUBLE_EQ(back.capacity_bps(), tr.capacity_bps());
  EXPECT_EQ(back.total_bytes(), tr.total_bytes());
  EXPECT_EQ(back.records()[tr.size() / 2].at, tr.records()[tr.size() / 2].at);
}

TEST(TraceIo, RoundTripsThroughFile) {
  trace::PacketTrace tr(10e6);
  tr.add(100, 40);
  tr.add(200, 1500);
  std::string path = "/tmp/abw_trace_io_test.csv";
  trace::save_trace_csv(tr, path);
  auto back = trace::load_trace_csv(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.records()[1].size_bytes, 1500u);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream no_header("1,2\n");
  EXPECT_THROW(trace::read_trace_csv(no_header), std::runtime_error);
  std::stringstream bad_field("# abw-trace v1 capacity_bps=1e6\nabc,100\n");
  EXPECT_THROW(trace::read_trace_csv(bad_field), std::runtime_error);
  std::stringstream no_comma("# abw-trace v1 capacity_bps=1e6\n123 100\n");
  EXPECT_THROW(trace::read_trace_csv(no_comma), std::runtime_error);
  std::stringstream out_of_order(
      "# abw-trace v1 capacity_bps=1e6\n200,100\n100,100\n");
  EXPECT_THROW(trace::read_trace_csv(out_of_order), std::runtime_error);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# abw-trace v1 capacity_bps=5e6\n# comment\n\n10,100\n");
  auto tr = trace::read_trace_csv(ss);
  EXPECT_EQ(tr.size(), 1u);
}

// ----------------------------------------------------------- link loss ---

TEST(LinkLoss, LossRateMatchesConfig) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 1e9;
  cfg.random_loss_prob = 0.1;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sim::Packet p;
    p.size_bytes = 100;
    simu.at(i * 1000, [&path, p] { path.inject(0, p); });
  }
  simu.run_until_idle();
  double loss = static_cast<double>(path.link(0).stats().packets_lost) / kN;
  EXPECT_NEAR(loss, 0.1, 0.01);
  EXPECT_EQ(path.link(0).stats().packets_in,
            path.link(0).stats().packets_out +
                path.link(0).stats().packets_lost +
                path.link(0).stats().packets_dropped);
}

TEST(LinkLoss, ProbeStreamsReportLosses) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 100e6;
  cfg.random_loss_prob = 0.05;
  sim::Path path(simu, {cfg});
  probe::ProbeSession session(simu, path);
  session.set_drain_timeout(200 * kMillisecond);
  auto res = session.send_stream_now(probe::StreamSpec::periodic(20e6, 1500, 400));
  EXPECT_GT(res.lost_count(), 0u);
  EXPECT_LT(res.lost_count(), 100u);  // ~20 expected
  EXPECT_GT(res.output_rate_bps(), 0.0);
}

TEST(LinkLoss, TcpSurvivesRandomLoss) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 20e6;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.random_loss_prob = 0.01;
  sim::Path path(simu, {cfg});
  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;
  demux.register_handler(sim::PacketType::kTcpData, &hub);
  path.set_receiver(&demux);
  tcp::TcpConfig tc;
  tc.receiver_window = 128;
  tcp::TcpConnection conn(simu, path, hub, 1, tc);
  conn.start(0);
  simu.run_until(20 * kSecond);
  EXPECT_GT(conn.retransmits(), 0u);
  EXPECT_GT(conn.throughput_bps(simu.now()), 1e6);
}

TEST(LinkLoss, RejectsInvalidProbability) {
  sim::Simulator simu;
  sim::LinkConfig bad;
  bad.random_loss_prob = 1.5;
  EXPECT_THROW(sim::Link(simu, "x", bad), std::invalid_argument);
}

// ------------------------------------------------------- receiver clock ---

TEST(ReceiverClock, ConstantOffsetInflatesOwdsNotTrends) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  probe::ReceiverClock clock;
  clock.offset = 500 * kMillisecond;  // half a second of clock error
  sc.session().set_receiver_clock(clock);

  auto res = sc.session().send_stream_now(probe::StreamSpec::periodic(20e6, 1500, 100));
  auto owds = res.owds_seconds();
  EXPECT_GT(owds.front(), 0.5);  // absolute OWDs absorb the offset...
  auto rel = res.relative_owds_ms();
  EXPECT_NEAR(rel.front(), 0.0, 1e-9);  // ...relative OWDs do not
  EXPECT_NE(stats::combined_trend(owds), stats::Trend::kIncreasing);
}

TEST(ReceiverClock, DriftIsNegligibleWithinOneStream) {
  // 100 ppm drift adds 5 us over a 50 ms stream — far below queueing
  // signals; the trend verdicts at both rates must be unaffected.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  probe::ReceiverClock clock;
  clock.drift_ppm = 100.0;
  sc.session().set_receiver_clock(clock);

  auto below = sc.session().send_stream_now(probe::StreamSpec::periodic(20e6, 1500, 150));
  EXPECT_NE(stats::combined_trend(below.owds_seconds()),
            stats::Trend::kIncreasing);
  auto above = sc.session().send_stream_now(probe::StreamSpec::periodic(40e6, 1500, 150));
  EXPECT_EQ(stats::combined_trend(above.owds_seconds()),
            stats::Trend::kIncreasing);
}

TEST(ReceiverClock, DriftAccumulatesAcrossStreamsAndDetrends) {
  // Across many seconds the drift dominates long-run OWD records; the
  // detrending utility recovers the stationary residual.
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kPoisson;
  auto sc = core::Scenario::single_hop(cfg);
  probe::ReceiverClock clock;
  clock.drift_ppm = 200.0;
  sc.session().set_receiver_clock(clock);

  std::vector<double> baselines;
  for (int i = 0; i < 40; ++i) {
    auto res = sc.session().send_stream_now(
        probe::StreamSpec::periodic(10e6, 1500, 20), 100 * kMillisecond);
    auto owds = res.owds_seconds();
    if (!owds.empty()) baselines.push_back(stats::median(owds));
  }
  // Raw baselines drift upward strongly.
  auto fit_x = std::vector<double>(baselines.size());
  for (std::size_t i = 0; i < fit_x.size(); ++i) fit_x[i] = static_cast<double>(i);
  EXPECT_GT(stats::linear_fit(fit_x, baselines).slope, 1e-6);
  // Detrended residual is small again.
  auto resid = stats::linear_detrend(baselines);
  EXPECT_LT(stats::stddev(resid), stats::stddev(baselines));
}

// ----------------------------------------------------------- ParetoGap ---

TEST(ParetoGap, RateConvergesDespiteHeavyTail) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 1e9;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  traffic::ParetoGapGenerator g(simu, path, 0, false, 1, stats::Rng(5), 30e6,
                                1500, 1.9);
  g.start(0, 60 * kSecond);
  simu.run_until(60 * kSecond);
  EXPECT_NEAR(g.offered_rate(), 30e6, 30e6 * 0.1);
}

TEST(ParetoGap, GapsAreHeavierThanExponential) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 1e9;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  std::vector<double> gaps;
  sim::SimTime last = -1;
  path.link(0).set_arrival_tap([&](const sim::Packet&, sim::SimTime t) {
    if (last >= 0) gaps.push_back(sim::to_seconds(t - last));
    last = t;
  });
  traffic::ParetoGapGenerator g(simu, path, 0, false, 1, stats::Rng(6), 30e6,
                                1500, 1.5);
  g.start(0, 60 * kSecond);
  simu.run_until(60 * kSecond);
  ASSERT_GT(gaps.size(), 1000u);
  double cv = stats::stddev(gaps) / stats::mean(gaps);
  EXPECT_GT(cv, 1.5);  // exponential would be 1
}

TEST(ParetoGap, RejectsBadShape) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  sim::Path path(simu, {cfg});
  EXPECT_THROW(traffic::ParetoGapGenerator(simu, path, 0, false, 1,
                                           stats::Rng(1), 1e6, 1500, 1.0),
               std::invalid_argument);
}

// -------------------------------------------------------------- SChirp ---

TEST(SChirp, SmoothingIsCausalAndAveraging) {
  std::vector<double> spike = {0, 0, 0, 9, 0, 0, 0};
  auto sm = est::SChirp::smooth(spike, 3);
  ASSERT_EQ(sm.size(), spike.size());
  EXPECT_DOUBLE_EQ(sm[2], 0.0);  // nothing leaks BEFORE the spike
  EXPECT_DOUBLE_EQ(sm[3], 3.0);
  EXPECT_DOUBLE_EQ(sm[5], 3.0);  // trailing window carries it forward
  EXPECT_DOUBLE_EQ(sm[6], 0.0);
}

TEST(SChirp, WindowOneIsIdentity) {
  std::vector<double> xs = {1, 2, 3};
  EXPECT_EQ(est::SChirp::smooth(xs, 1), xs);
}

TEST(SChirp, EstimatesOnCbrWithinTolerance) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  est::SChirpConfig scfg;
  scfg.chirp.low_rate_bps = 4e6;
  scfg.chirp.packets_per_chirp = 22;
  scfg.chirp.chirps = 20;
  est::SChirp tool(scfg);
  auto e = tool.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 10e6);
  EXPECT_EQ(tool.name(), "schirp");
}

TEST(SChirp, RejectsBadConfig) {
  est::SChirpConfig bad;
  bad.smooth_window = 2;  // even
  EXPECT_THROW(est::SChirp{bad}, std::invalid_argument);
  bad.smooth_window = 3;
  bad.busy_threshold_fraction = 0.0;
  EXPECT_THROW(est::SChirp{bad}, std::invalid_argument);
}

// ------------------------------------------------------------ registry ---

TEST(Registry, ListsAllTools) {
  auto tools = core::available_tools();
  EXPECT_EQ(tools.size(), 9u);
  for (const auto& t : tools) EXPECT_TRUE(core::is_tool(t));
  EXPECT_FALSE(core::is_tool("nonexistent"));
}

TEST(Registry, BuildsEveryToolAndNamesMatch) {
  core::ToolOptions opts;
  opts.tight_capacity_bps = 50e6;
  opts.min_rate_bps = 2e6;
  opts.max_rate_bps = 48e6;
  stats::Rng rng(1);
  for (const auto& name : core::available_tools()) {
    auto tool = core::make_estimator(name, opts, rng);
    ASSERT_NE(tool, nullptr) << name;
    EXPECT_EQ(tool->name(), name);
  }
}

TEST(Registry, DirectToolsRequireCapacity) {
  core::ToolOptions opts;  // tight_capacity_bps = 0
  opts.min_rate_bps = 2e6;
  opts.max_rate_bps = 48e6;
  stats::Rng rng(1);
  for (const char* name : {"direct", "spruce", "igi", "ptr"})
    EXPECT_THROW(core::make_estimator(name, opts, rng), std::invalid_argument)
        << name;
  // Iterative tools do not need it.
  EXPECT_NO_THROW(core::make_estimator("pathload", opts, rng));
  EXPECT_NO_THROW(core::make_estimator("pathchirp", opts, rng));
}

TEST(Registry, UnknownToolThrows) {
  core::ToolOptions opts;
  stats::Rng rng(1);
  EXPECT_THROW(core::make_estimator("sprouce", opts, rng), std::invalid_argument);
}

TEST(Registry, RegistryBuiltPathloadWorksEndToEnd) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  core::ToolOptions opts;
  opts.min_rate_bps = 2e6;
  opts.max_rate_bps = 49e6;
  stats::Rng rng(2);
  auto tool = core::make_estimator("pathload", opts, rng);
  auto e = tool->estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 6e6);
}

}  // namespace
