// Tests for packet traces, the avail-bw process A_tau(t) (Eqs. 1-3), and
// the synthetic self-similar trace substituting for the paper's NLANR
// trace.
#include <gtest/gtest.h>

#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/hurst.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/packet_trace.hpp"
#include "trace/synthetic_trace.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// --------------------------------------------------------- PacketTrace ---

TEST(PacketTrace, AccumulatesInOrder) {
  trace::PacketTrace tr(10e6);
  tr.add(0, 1000);
  tr.add(kMillisecond, 500);
  tr.add(kMillisecond, 500);  // equal timestamps allowed
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.total_bytes(), 2000u);
  EXPECT_EQ(tr.start_time(), 0);
  EXPECT_EQ(tr.end_time(), kMillisecond);
}

TEST(PacketTrace, RejectsDisorderAndZeroSize) {
  trace::PacketTrace tr(10e6);
  tr.add(kMillisecond, 100);
  EXPECT_THROW(tr.add(0, 100), std::invalid_argument);
  EXPECT_THROW(tr.add(2 * kMillisecond, 0), std::invalid_argument);
  EXPECT_THROW(trace::PacketTrace(0.0), std::invalid_argument);
}

TEST(PacketTrace, MeanUtilization) {
  trace::PacketTrace tr(8e6);  // 1 MB/s
  // 1000 bytes per ms over 10 ms = 8 Mb/s = full utilization.
  for (int i = 0; i <= 10; ++i) tr.add(i * kMillisecond, 1000);
  EXPECT_NEAR(tr.mean_utilization(), 1.1, 0.15);  // 11 pkts / 10 ms span
}

TEST(PacketTrace, ToReplayRoundTrips) {
  trace::PacketTrace tr(10e6);
  tr.add(5, 100);
  tr.add(10, 200);
  auto recs = tr.to_replay();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].at, 10);
  EXPECT_EQ(recs[1].size_bytes, 200u);
}

TEST(LinkTraceRecorder, CapturesLinkArrivals) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 100e6;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  trace::LinkTraceRecorder rec(path.link(0));

  traffic::PoissonGenerator g(simu, path, 0, false, 1, stats::Rng(5), 20e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, kSecond);
  simu.run_until(kSecond);
  EXPECT_EQ(rec.trace().size(), g.packets_sent());
  EXPECT_DOUBLE_EQ(rec.trace().capacity_bps(), 100e6);
}

// ------------------------------------------------------ AvailBwProcess ---

trace::PacketTrace make_uniform_trace(double capacity, double rate,
                                      sim::SimTime duration,
                                      std::uint32_t pkt = 1000) {
  trace::PacketTrace tr(capacity);
  sim::SimTime gap = sim::transmission_time(pkt, rate);
  for (sim::SimTime t = 0; t < duration; t += gap) tr.add(t, pkt);
  return tr;
}

TEST(AvailBwProcess, ConstantLoadGivesConstantAvailBw) {
  auto tr = make_uniform_trace(50e6, 20e6, kSecond);
  trace::AvailBwProcess proc(tr);
  EXPECT_NEAR(proc.mean_avail_bw(), 30e6, 0.5e6);
  auto series = proc.series(10 * kMillisecond);
  ASSERT_GT(series.size(), 50u);
  for (double a : series) EXPECT_NEAR(a, 30e6, 1.5e6);
}

TEST(AvailBwProcess, BytesInWindows) {
  trace::PacketTrace tr(10e6);
  tr.add(0, 100);
  tr.add(10, 200);
  tr.add(20, 300);
  trace::AvailBwProcess proc(tr);
  EXPECT_EQ(proc.bytes_in(0, 11), 300u);
  EXPECT_EQ(proc.bytes_in(10, 21), 500u);
  EXPECT_EQ(proc.bytes_in(21, 100), 0u);
}

TEST(AvailBwProcess, AvailBwClampedAtZero) {
  // Arrival rate above capacity in the window.
  trace::PacketTrace tr(1e6);
  for (int i = 0; i < 100; ++i) tr.add(i, 1500);
  trace::AvailBwProcess proc(tr);
  EXPECT_DOUBLE_EQ(proc.avail_bw(0, 100), 0.0);
}

TEST(AvailBwProcess, AggregationIdentity) {
  // Bytes over a 4-window span equal the sum over its sub-windows, so the
  // tau-average of A is consistent across scales (up to the clamp).
  auto tr = make_uniform_trace(50e6, 35e6, 2 * kSecond);
  trace::AvailBwProcess proc(tr);
  sim::SimTime tau = 5 * kMillisecond;
  for (int w = 0; w < 10; ++w) {
    sim::SimTime t0 = w * 4 * tau;
    double coarse = proc.avail_bw(t0, 4 * tau);
    double fine_mean = 0.0;
    for (int i = 0; i < 4; ++i) fine_mean += proc.avail_bw(t0 + i * tau, tau);
    fine_mean /= 4.0;
    EXPECT_NEAR(coarse, fine_mean, 1e3);
  }
}

TEST(AvailBwProcess, PoissonSamplesWithinRange) {
  auto tr = make_uniform_trace(50e6, 20e6, kSecond);
  trace::AvailBwProcess proc(tr);
  stats::Rng rng(3);
  auto samples = proc.poisson_samples(20, 10 * kMillisecond, rng);
  ASSERT_EQ(samples.size(), 20u);
  for (double s : samples) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 50e6);
  }
}

TEST(AvailBwProcess, VariationRangeOrdered) {
  stats::Rng rng(5);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 5 * kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  trace::AvailBwProcess proc(tr);
  auto [lo, hi] = proc.variation_range(10 * kMillisecond, 0.05);
  EXPECT_LT(lo, hi);
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, cfg.capacity_bps);
}

TEST(AvailBwProcess, RejectsTinyTrace) {
  trace::PacketTrace tr(1e6);
  tr.add(0, 100);
  EXPECT_THROW(trace::AvailBwProcess{tr}, std::invalid_argument);
}

// ------------------------------------------------------ synthetic trace ---

TEST(SyntheticTrace, MeanUtilizationOnTarget) {
  stats::Rng rng(11);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 10 * kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  EXPECT_NEAR(tr.mean_utilization(), cfg.mean_utilization, 0.05);
}

TEST(SyntheticTrace, VarianceDecaysSlowerThanIid) {
  // The defining self-similar property (paper Eqs. 4 vs 5): aggregating
  // by k shrinks the variance by much less than k.
  stats::Rng rng(12);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 20 * kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  trace::AvailBwProcess proc(tr);
  double v1 = stats::variance(proc.series(2 * kMillisecond));
  double v16 = stats::variance(proc.series(32 * kMillisecond));
  double ratio = v1 / v16;
  EXPECT_LT(ratio, 12.0);  // IID would give ~16
  EXPECT_GT(ratio, 1.0);   // but variance must still decrease
}

TEST(SyntheticTrace, HurstRoughlyAsConfigured) {
  stats::Rng rng(13);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 30 * kSecond;
  cfg.hurst = 0.8;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  trace::AvailBwProcess proc(tr);
  double h = stats::hurst_variance_time(proc.series(kMillisecond));
  EXPECT_GT(h, 0.65);
  EXPECT_LT(h, 0.95);
}

TEST(SyntheticTrace, TrimodalSizesPresent) {
  stats::Rng rng(14);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 2 * kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  bool saw40 = false, saw576 = false, saw1500 = false;
  for (const auto& r : tr.records()) {
    saw40 |= r.size_bytes == 40;
    saw576 |= r.size_bytes == 576;
    saw1500 |= r.size_bytes == 1500;
  }
  EXPECT_TRUE(saw40);
  EXPECT_TRUE(saw576);
  EXPECT_TRUE(saw1500);
}

TEST(SyntheticTrace, DeterministicGivenSeed) {
  trace::SyntheticTraceConfig cfg;
  cfg.duration = kSecond;
  stats::Rng r1(77), r2(77);
  auto a = trace::synthesize_selfsimilar_trace(cfg, r1);
  auto b = trace::synthesize_selfsimilar_trace(cfg, r2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.records()[a.size() / 2].at, b.records()[b.size() / 2].at);
}

TEST(SyntheticTrace, RejectsBadConfig) {
  stats::Rng rng(1);
  trace::SyntheticTraceConfig bad;
  bad.mean_utilization = 1.5;
  EXPECT_THROW(trace::synthesize_selfsimilar_trace(bad, rng),
               std::invalid_argument);
}

// Replaying a synthetic trace through a simulated link reproduces its
// utilization — the trace and the simulator agree about ground truth.
TEST(SyntheticTrace, ReplayReproducesUtilization) {
  stats::Rng rng(15);
  trace::SyntheticTraceConfig cfg;
  cfg.duration = 5 * kSecond;
  auto tr = trace::synthesize_selfsimilar_trace(cfg, rng);

  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = cfg.capacity_bps;
  lc.queue_limit_bytes = 64 << 20;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  traffic::TraceReplayer rep(simu, path, 0, false, 1);
  rep.schedule(tr.to_replay());
  simu.run_until_idle();

  double sim_util = path.link(0).meter().utilization(0, cfg.duration);
  EXPECT_NEAR(sim_util, tr.mean_utilization(), 0.02);
}

}  // namespace
