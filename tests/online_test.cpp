// Tests for the online (streaming) estimation layer: the reorder-safe
// output-rate fix, StreamResult invariants under random impairments, the
// three trackers (Kalman, passive TCP delivery rate, adaptive prober),
// and per-update admission control + observability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "est/online/adaptive.hpp"
#include "est/online/kalman.hpp"
#include "est/online/online.hpp"
#include "est/online/tcp_rate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/stream_result.hpp"
#include "sim/fault.hpp"
#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "tcp/tcp.hpp"

namespace {

using namespace abw;
using abw::sim::kMicrosecond;
using abw::sim::kMillisecond;
using abw::sim::kSecond;
namespace online = abw::est::online;

// Collects decision events by value (the string_views in TraceEvent only
// live through emit()).
struct DecisionLog final : obs::TraceSink {
  struct Entry {
    sim::SimTime time;
    std::string source, label, text;
    double value, value2;
  };
  std::vector<Entry> entries;
  void emit(const obs::TraceEvent& ev) override {
    if (ev.kind != obs::EventKind::kDecision) return;
    entries.push_back({ev.time, std::string(ev.source), std::string(ev.label),
                       std::string(ev.text), ev.value, ev.value2});
  }
};

// A synthetic sample straight from the paper's Eq. 8 fluid model:
// strain(Ri) = max(0, (Ri - A)/Ct), Ro = Ri/(1 + strain).
online::OnlineSample fluid_sample(double ri, double avail, double ct,
                                  sim::SimTime t) {
  online::OnlineSample s;
  s.time = t;
  s.input_rate_bps = ri;
  s.strain = std::max(0.0, (ri - avail) / ct);
  s.rate_bps = ri / (1.0 + s.strain);
  s.packets = 60;
  return s;
}

// ------------------------------------------- reorder-safe output rate ---

TEST(StreamResultReorder, ReorderedStreamHasPositiveOutputRate) {
  // Regression for the seq-ordered span bug: when the highest-seq
  // survivor overtakes earlier packets, first/last *by seq* gives a
  // non-positive receive span and the old code silently returned 0.
  probe::StreamResult res;
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    probe::ProbeRecord p;
    p.seq = seq;
    p.size_bytes = 1000;
    p.sent = seq * kMillisecond;
    p.received = (10 + seq) * kMillisecond;
    res.packets.push_back(p);
  }
  // The last packet overtakes everything: arrives before packet 0.
  res.packets[3].received = 9 * kMillisecond + 500 * kMicrosecond;
  res.reordered_count = 1;

  // Seq-ordered span would be 9.5ms - 10ms < 0 -> the old code's 0.0.
  ASSERT_LT(res.packets.back().received, res.packets.front().received);

  // Receive span from timestamps: earliest 9.5 ms (seq 3), latest 12 ms
  // (seq 2) -> 2.5 ms; bits after the earliest arrival = 3 * 8000.
  double expect = 3 * 8000.0 / 2.5e-3;
  EXPECT_GT(res.output_rate_bps(), 0.0);
  EXPECT_NEAR(res.output_rate_bps(), expect, 1.0);
}

TEST(StreamResultReorder, InOrderStreamsKeepTheClassicFormula) {
  // For FIFO arrivals the fix must be bit-identical to the original
  // "(bits after first) / (last - first)" computation.
  probe::StreamResult res;
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    probe::ProbeRecord p;
    p.seq = seq;
    p.size_bytes = 1200;
    p.sent = seq * 300 * kMicrosecond;
    p.received = p.sent + 2 * kMillisecond;
    if (seq == 4) p.lost = true;
    res.packets.push_back(p);
  }
  sim::SimTime span = res.packets[9].received - res.packets[0].received;
  double expect = 8 * 1200 * 8.0 / sim::to_seconds(span);
  EXPECT_DOUBLE_EQ(res.output_rate_bps(), expect);
}

TEST(StreamResultReorder, FaultInjectedReorderingStillYieldsARate) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  sim::LinkFaults faults;
  faults.reorder_prob = 0.5;
  faults.reorder_extra_max = 2 * kMillisecond;
  sc.path().link(0).set_faults(faults);

  auto res = sc.session().send_stream_now(
      probe::StreamSpec::periodic(30e6, 1200, 100));
  ASSERT_GT(res.reordered_count, 0u);  // p=0.5 over 100 packets
  EXPECT_GT(res.output_rate_bps(), 0.0);
  // Ro still reflects the link: within a factor ~2 of the probing rate.
  EXPECT_LT(res.output_rate_bps(), 60e6);
  EXPECT_GT(res.output_rate_bps(), 10e6);
}

// ------------------------------------ StreamResult property invariants ---

void check_invariants(const probe::StreamResult& res) {
  EXPECT_EQ(res.received_count() + res.lost_count(), res.packets.size());
  EXPECT_GE(res.loss_fraction(), 0.0);
  EXPECT_LE(res.loss_fraction(), 1.0);
  EXPECT_EQ(res.complete(), res.lost_count() == 0);
  for (double v : {res.input_rate_bps(), res.output_rate_bps(),
                   res.rate_ratio(), res.loss_fraction()}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  auto owds = res.owds_seconds();
  EXPECT_EQ(owds.size(), res.received_count());
  for (double d : owds) EXPECT_TRUE(std::isfinite(d));
  auto rel = res.relative_owds_ms();
  EXPECT_EQ(rel.size(), res.received_count());
  if (!rel.empty()) {
    EXPECT_DOUBLE_EQ(rel.front(), 0.0);
  }
  for (double d : rel) EXPECT_TRUE(std::isfinite(d));
  auto s = online::OnlineEstimator::to_sample(res);
  EXPECT_TRUE(std::isfinite(s.rate_bps));
  EXPECT_TRUE(std::isfinite(s.input_rate_bps));
  EXPECT_TRUE(std::isfinite(s.strain));
  EXPECT_GE(s.strain, 0.0);
  EXPECT_EQ(s.packets, res.packets.size());
}

TEST(StreamResultProperty, RandomImpairmentsNeverBreakAccessors) {
  stats::Rng rng(0xBEEF);
  for (int trial = 0; trial < 400; ++trial) {
    probe::StreamResult res;
    std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    sim::SimTime t = 0;
    for (std::uint32_t seq = 0; seq < n; ++seq) {
      probe::ProbeRecord p;
      p.seq = seq;
      p.size_bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
      p.sent = t;
      t += rng.uniform_int(1, 1000) * kMicrosecond;
      p.lost = rng.bernoulli(0.3);
      if (!p.lost)
        // Jitter up to 3 ms on a 1 ms base delay: heavy reordering.
        p.received = p.sent + kMillisecond + rng.uniform_int(0, 3000) * kMicrosecond;
      res.packets.push_back(p);
    }
    res.duplicate_count = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    res.reordered_count = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    check_invariants(res);
  }
}

TEST(StreamResultProperty, FaultInjectedScenarioStreamsHoldInvariants) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kPoisson;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  sim::LinkFaults faults;
  faults.gilbert.p_good_bad = 0.05;
  faults.gilbert.p_bad_good = 0.3;
  faults.reorder_prob = 0.2;
  faults.duplicate_prob = 0.05;
  sc.path().link(0).set_faults(faults);

  for (double rate : {10e6, 30e6, 60e6, 90e6}) {
    auto res = sc.session().send_stream_now(
        probe::StreamSpec::periodic(rate, 1200, 80));
    check_invariants(res);
  }
}

// --------------------------------------------------------------- Kalman ---

TEST(KalmanTracker, ConvergesOnTheFluidModel) {
  online::KalmanTracker tr;
  const double avail = 25e6, ct = 50e6;
  sim::SimTime t = 0;
  for (int round = 0; round < 10; ++round) {
    for (double ri : {30e6, 40e6, 50e6, 60e6}) {
      t += 100 * kMillisecond;
      EXPECT_EQ(tr.feed(fluid_sample(ri, avail, ct, t)),
                online::FeedResult::kUpdated);
    }
  }
  ASSERT_TRUE(tr.belief().valid());
  EXPECT_NEAR(tr.belief().estimate_bps, avail, 0.1 * avail);
  EXPECT_GT(tr.belief().confidence, 0.5);
  EXPECT_EQ(tr.belief().last_update, t);
  EXPECT_EQ(tr.belief().updates, 40u);
  // The line's slope identifies the capacity: beta = 1/Ct (Mb/s units).
  EXPECT_NEAR(1.0 / tr.beta(), ct / 1e6, 0.1 * ct / 1e6);
}

TEST(KalmanTracker, ReconvergesAfterALevelShift) {
  online::KalmanTracker tr;
  const double ct = 50e6;
  sim::SimTime t = 0;
  auto feed_regime = [&](double avail, int rounds) {
    for (int round = 0; round < rounds; ++round)
      for (double ri : {35e6, 45e6, 55e6, 65e6}) {
        t += 100 * kMillisecond;
        tr.feed(fluid_sample(ri, avail, ct, t));
      }
  };
  feed_regime(30e6, 15);
  ASSERT_NEAR(tr.belief().estimate_bps, 30e6, 3e6);
  feed_regime(10e6, 15);  // capacity flap / regime change
  EXPECT_GE(tr.change_points(), 1u);
  EXPECT_NEAR(tr.belief().estimate_bps, 10e6, 1.5e6);
}

TEST(KalmanTracker, RejectsPassiveAndEmptySamples) {
  online::KalmanTracker tr;
  online::OnlineSample passive;
  passive.time = kSecond;
  passive.rate_bps = 10e6;  // no input rate: a passive delivery sample
  EXPECT_EQ(tr.feed(passive), online::FeedResult::kRejected);
  EXPECT_FALSE(tr.belief().valid());
  EXPECT_EQ(tr.belief().updates, 0u);
}

// ---------------------------------------------------- admission control ---

TEST(OnlineAdmission, ProbeBudgetFreezesTheBelief) {
  online::KalmanTracker tr;
  est::EstimatorLimits lim;
  lim.max_probe_packets = 100;
  tr.set_limits(lim);
  EXPECT_EQ(tr.feed(fluid_sample(40e6, 25e6, 50e6, kSecond)),
            online::FeedResult::kUpdated);  // 60 consumed
  double before = tr.belief().estimate_bps;
  EXPECT_EQ(tr.feed(fluid_sample(50e6, 25e6, 50e6, 2 * kSecond)),
            online::FeedResult::kExhausted);  // 120 > 100: dropped
  EXPECT_TRUE(tr.exhausted());
  EXPECT_EQ(tr.abort(), est::AbortReason::kProbeBudgetExhausted);
  EXPECT_EQ(tr.packets_consumed(), 60u);
  EXPECT_EQ(tr.belief().updates, 1u);
  EXPECT_EQ(tr.belief().estimate_bps, before);  // frozen
  // Everything after the trip short-circuits.
  EXPECT_EQ(tr.feed(fluid_sample(30e6, 25e6, 50e6, 3 * kSecond)),
            online::FeedResult::kExhausted);
}

TEST(OnlineAdmission, DeadlineCountsFromTheFirstSample) {
  online::KalmanTracker tr;
  est::EstimatorLimits lim;
  lim.deadline = kSecond;
  tr.set_limits(lim);
  EXPECT_EQ(tr.feed(fluid_sample(40e6, 25e6, 50e6, 5 * kSecond)),
            online::FeedResult::kUpdated);
  EXPECT_EQ(tr.feed(fluid_sample(40e6, 25e6, 50e6, 5 * kSecond + kSecond / 2)),
            online::FeedResult::kUpdated);
  EXPECT_EQ(tr.feed(fluid_sample(40e6, 25e6, 50e6, 7 * kSecond)),
            online::FeedResult::kExhausted);
  EXPECT_EQ(tr.abort(), est::AbortReason::kDeadline);
}

TEST(OnlineAdmission, RejectedSamplesStillSpendTheBudget) {
  // The probes were sent whether or not the tracker could use them.
  online::KalmanTracker tr;
  est::EstimatorLimits lim;
  lim.max_probe_packets = 100;
  tr.set_limits(lim);
  online::OnlineSample junk;
  junk.time = kSecond;
  junk.packets = 60;  // active stream that came back unusable
  EXPECT_EQ(tr.feed(junk), online::FeedResult::kRejected);
  EXPECT_EQ(tr.packets_consumed(), 60u);
  junk.time = 2 * kSecond;
  EXPECT_EQ(tr.feed(junk), online::FeedResult::kExhausted);
}

// ---------------------------------------------------- TCP delivery rate ---

TEST(TcpDeliveryRate, BulkFlowTracksTheBottleneck) {
  sim::Simulator simu;
  sim::LinkConfig lcfg;
  lcfg.capacity_bps = 20e6;
  lcfg.propagation_delay = 5 * kMillisecond;
  lcfg.queue_limit_bytes = 128 * 1500;
  sim::Path path(simu, {lcfg});
  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;
  demux.register_handler(sim::PacketType::kTcpData, &hub);
  path.set_receiver(&demux);

  tcp::TcpConfig tcfg;
  tcp::TcpConnection conn(simu, path, hub, 1, tcfg);
  online::TcpDeliveryRateTracker tracker;
  tracker.attach(conn);
  conn.start(0);
  simu.run_until(6 * kSecond);

  ASSERT_TRUE(tracker.belief().valid());
  // Payload rate of a saturated 20 Mb/s link: 20e6 * 1460/1500.
  double payload_rate = 20e6 * 1460.0 / 1500.0;
  EXPECT_NEAR(tracker.belief().estimate_bps, payload_rate,
              0.15 * payload_rate);
  EXPECT_DOUBLE_EQ(tracker.belief().confidence, 1.0);
  EXPECT_GT(tracker.window_samples(), 0u);
}

TEST(TcpDeliveryRate, AppLimitedSamplesNeverLowerTheEstimate) {
  online::TcpDeliveryRateTracker tr;
  tcp::DeliveryRateSample s;
  s.time = kSecond;
  s.delivery_rate_bps = 10e6;
  EXPECT_EQ(tr.feed_delivery(s), online::FeedResult::kUpdated);
  EXPECT_DOUBLE_EQ(tr.belief().estimate_bps, 10e6);

  s.time += 100 * kMillisecond;
  s.delivery_rate_bps = 2e6;
  s.app_limited = true;  // understates the path: must not lower
  EXPECT_EQ(tr.feed_delivery(s), online::FeedResult::kRejected);
  EXPECT_DOUBLE_EQ(tr.belief().estimate_bps, 10e6);

  s.time += 100 * kMillisecond;
  s.delivery_rate_bps = 12e6;  // app-limited may still raise
  EXPECT_EQ(tr.feed_delivery(s), online::FeedResult::kUpdated);
  EXPECT_DOUBLE_EQ(tr.belief().estimate_bps, 12e6);
}

TEST(TcpDeliveryRate, OldSamplesAgeOutOfTheMaxWindow) {
  online::TcpRateConfig cfg;
  cfg.window = kSecond;
  online::TcpDeliveryRateTracker tr(cfg);
  tcp::DeliveryRateSample s;
  s.time = kSecond;
  s.delivery_rate_bps = 30e6;
  tr.feed_delivery(s);
  for (int i = 1; i <= 20; ++i) {
    s.time = kSecond + i * 200 * kMillisecond;
    s.delivery_rate_bps = 8e6;
    tr.feed_delivery(s);
  }
  // The 30 Mb/s sample is 4 s old: only the 8 Mb/s plateau remains.
  EXPECT_DOUBLE_EQ(tr.belief().estimate_bps, 8e6);
}

TEST(TcpDeliveryRate, DeadlineAppliesToPassiveSamples) {
  online::TcpDeliveryRateTracker tr;
  est::EstimatorLimits lim;
  lim.deadline = kSecond;
  tr.set_limits(lim);
  tcp::DeliveryRateSample s;
  s.time = kSecond;
  s.delivery_rate_bps = 10e6;
  EXPECT_EQ(tr.feed_delivery(s), online::FeedResult::kUpdated);
  s.time = 3 * kSecond;
  EXPECT_EQ(tr.feed_delivery(s), online::FeedResult::kExhausted);
  EXPECT_EQ(tr.abort(), est::AbortReason::kDeadline);
}

// ------------------------------------------------------- AdaptiveProber ---

TEST(AdaptiveProber, ConvergesNearTheNominalAvailBw) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;  // fluid-like: clean strain samples
  core::Scenario sc = core::Scenario::single_hop(cfg);
  online::AdaptiveProber prober;
  for (int i = 0; i < 40; ++i)
    ASSERT_NE(prober.step(sc.session()), online::FeedResult::kExhausted);
  ASSERT_TRUE(prober.belief().valid());
  EXPECT_NEAR(prober.belief().estimate_bps, sc.nominal_avail_bw(),
              0.3 * sc.nominal_avail_bw());
  EXPECT_GT(prober.belief().updates, 10u);
}

TEST(AdaptiveProber, RateChoicesStayInsideTheBracket) {
  online::AdaptiveConfig cfg;
  cfg.min_rate_bps = 5e6;
  cfg.max_rate_bps = 80e6;
  online::AdaptiveProber prober(cfg);
  for (int i = 0; i < 64; ++i) {
    double r = prober.next_rate_bps();
    EXPECT_GE(r, 5e6 * 0.999);
    EXPECT_LE(r, 80e6 * 1.001);
  }
}

TEST(AdaptiveProber, StepStopsBeforeBustingTheBudget) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  online::AdaptiveProber prober;  // 60 packets per stream
  est::EstimatorLimits lim;
  lim.max_probe_packets = 150;
  prober.set_limits(lim);
  EXPECT_NE(prober.step(sc.session()), online::FeedResult::kExhausted);
  EXPECT_NE(prober.step(sc.session()), online::FeedResult::kExhausted);
  std::uint64_t sent_before = sc.session().cost().packets;
  // 120 consumed; a third stream would reach 180 > 150: nothing sent.
  EXPECT_EQ(prober.step(sc.session()), online::FeedResult::kExhausted);
  EXPECT_EQ(sc.session().cost().packets, sent_before);
  EXPECT_EQ(prober.abort(), est::AbortReason::kProbeBudgetExhausted);
  EXPECT_EQ(prober.step(sc.session()), online::FeedResult::kExhausted);
}

TEST(AdaptiveProber, ValidatesItsConfig) {
  online::AdaptiveConfig bad;
  bad.min_rate_bps = 10e6;
  bad.max_rate_bps = 5e6;
  EXPECT_THROW(online::AdaptiveProber{bad}, std::invalid_argument);
  online::AdaptiveConfig bad2;
  bad2.packets_per_stream = 1;
  EXPECT_THROW(online::AdaptiveProber{bad2}, std::invalid_argument);
  online::AdaptiveConfig bad3;
  bad3.explore_fraction = 1.5;
  EXPECT_THROW(online::AdaptiveProber{bad3}, std::invalid_argument);
}

// -------------------------------------------------------- observability ---

TEST(OnlineObservability, UpdatesEmitCountersGaugesAndDecisions) {
  DecisionLog log;
  obs::MetricsRegistry metrics;
  online::KalmanTracker tr;
  tr.set_observer(&log, &metrics);
  est::EstimatorLimits lim;
  lim.max_probe_packets = 150;
  tr.set_limits(lim);

  tr.feed(fluid_sample(40e6, 25e6, 50e6, kSecond));       // updated (60)
  tr.feed(fluid_sample(50e6, 25e6, 50e6, 2 * kSecond));   // updated (120)
  tr.feed(fluid_sample(60e6, 25e6, 50e6, 3 * kSecond));   // budget trip

  EXPECT_EQ(metrics.counter("online.kalman.updates").value, 2u);
  EXPECT_EQ(metrics.counter("online.kalman.abort.probe-budget").value, 1u);
  EXPECT_GT(metrics.gauge("online.kalman.estimate_bps").value, 0.0);

  ASSERT_EQ(log.entries.size(), 3u);
  EXPECT_EQ(log.entries[0].source, "kalman");
  EXPECT_EQ(log.entries[0].label, "update");
  EXPECT_EQ(log.entries[0].text, "updated");
  EXPECT_EQ(log.entries[2].label, "admission");
  EXPECT_EQ(log.entries[2].text, "probe-budget");
}

TEST(OnlineObservability, NullObserverIsTheDefaultAndSafe) {
  online::KalmanTracker tr;
  EXPECT_EQ(tr.feed(fluid_sample(40e6, 25e6, 50e6, kSecond)),
            online::FeedResult::kUpdated);  // no sink, no registry: fine
}

}  // namespace
